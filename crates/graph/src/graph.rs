//! The directed *knowledge graph* of the overlay-network model.

use crate::{NodeId, UGraph};
use std::collections::BTreeSet;

/// A directed graph over nodes `0..n` in which an edge `(u, v)` means that `u` knows the
/// identifier of `v`.
///
/// Parallel edges and self-loops are allowed (the overlay algorithms create both). The
/// graph is stored as per-node out-adjacency lists; in-degrees are computed on demand.
///
/// # Example
///
/// ```
/// use overlay_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// assert_eq!(g.out_degree(1.into()), 1);
/// assert!(g.has_edge(0.into(), 1.into()));
/// assert!(!g.has_edge(1.into(), 0.into()));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiGraph {
    out: Vec<Vec<NodeId>>,
}

impl DiGraph {
    /// Creates a directed graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Total number of directed edges (counting parallel edges).
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Returns an iterator over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.out.len()).map(NodeId::from)
    }

    /// Adds a directed edge `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(v.index() < self.out.len(), "target node out of range");
        self.out[u.index()].push(v);
    }

    /// Adds both `(u, v)` and `(v, u)`.
    pub fn add_bidirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Returns `true` if at least one edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out[u.index()].contains(&v)
    }

    /// Out-neighbors of `u` (with multiplicity).
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out[u.index()]
    }

    /// Out-degree of `u` (number of identifiers `u` stores).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u.index()].len()
    }

    /// In-degrees of every node (number of nodes storing each identifier).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.out.len()];
        for adj in &self.out {
            for &v in adj {
                indeg[v.index()] += 1;
            }
        }
        indeg
    }

    /// The graph's degree: the maximum over all nodes of in-degree plus out-degree.
    pub fn degree(&self) -> usize {
        let indeg = self.in_degrees();
        self.out
            .iter()
            .enumerate()
            .map(|(i, adj)| adj.len() + indeg[i])
            .max()
            .unwrap_or(0)
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns all directed edges as `(u, v)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::with_capacity(self.edge_count());
        for (u, adj) in self.out.iter().enumerate() {
            for &v in adj {
                edges.push((NodeId::from(u), v));
            }
        }
        edges
    }

    /// Removes duplicate parallel edges from every adjacency list (self-loops are kept,
    /// deduplicated as well).
    pub fn dedup_edges(&mut self) {
        for adj in &mut self.out {
            let set: BTreeSet<NodeId> = adj.iter().copied().collect();
            *adj = set.into_iter().collect();
        }
    }

    /// The undirected version of the graph: every directed edge becomes an undirected
    /// edge, parallel edges are merged, and self-loops are dropped.
    pub fn to_undirected(&self) -> UGraph {
        let mut seen = BTreeSet::new();
        for (u, adj) in self.out.iter().enumerate() {
            for &v in adj {
                if u != v.index() {
                    let (a, b) = if u < v.index() {
                        (u, v.index())
                    } else {
                        (v.index(), u)
                    };
                    seen.insert((a, b));
                }
            }
        }
        let mut g = UGraph::new(self.out.len());
        for (a, b) in seen {
            g.add_edge(NodeId::from(a), NodeId::from(b));
        }
        g
    }

    /// Builds a directed graph from a list of edges.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i.into(), (i + 1).into());
        }
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = DiGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(), 0);
    }

    #[test]
    fn add_edge_updates_degrees() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(0.into()), 1);
        assert_eq!(g.out_degree(3.into()), 0);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 1]);
        // middle nodes have degree 2 (1 in + 1 out)
        assert_eq!(g.degree(), 2);
    }

    #[test]
    fn parallel_edges_counted_and_dedupable() {
        let mut g = DiGraph::new(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        assert_eq!(g.edge_count(), 2);
        g.dedup_edges();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn to_undirected_merges_and_drops_loops() {
        let mut g = DiGraph::new(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 0.into());
        g.add_edge(2.into(), 2.into());
        let u = g.to_undirected();
        assert_eq!(u.edge_count(), 1);
        assert_eq!(u.degree(2.into()), 0);
    }

    #[test]
    fn edges_roundtrip() {
        let g = path(5);
        let edges = g.edges();
        let g2 = DiGraph::from_edges(5, edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn bidirected_edge() {
        let mut g = DiGraph::new(2);
        g.add_bidirected_edge(0.into(), 1.into());
        assert!(g.has_edge(0.into(), 1.into()));
        assert!(g.has_edge(1.into(), 0.into()));
    }

    #[test]
    #[should_panic(expected = "target node out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0.into(), 5.into());
    }
}
