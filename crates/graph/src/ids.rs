//! Node identifiers.

use std::fmt;

/// An opaque node identifier.
///
/// The paper models identifiers as bit strings of length `O(log n)`; a `u64` comfortably
/// holds such identifiers for any graph we can simulate. In this workspace nodes of a
/// graph with `n` nodes are identified by `0..n`, which also serves as their index into
/// the simulator's node table, but nothing in the public API relies on identifiers being
/// dense.
///
/// # Example
///
/// ```
/// use overlay_graph::NodeId;
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates an identifier from its raw value.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw value of the identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if the raw value does not fit into `usize` (cannot happen on 64-bit
    /// targets).
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("node id does not fit into usize")
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value as u64)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.index()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_usize() {
        for i in [0usize, 1, 17, 4096] {
            let id = NodeId::from(i);
            assert_eq!(id.index(), i);
            assert_eq!(usize::from(id), i);
        }
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(3) < NodeId::new(4));
        assert_eq!(NodeId::new(9), NodeId::new(9));
    }

    #[test]
    fn hashable_and_distinct() {
        let set: HashSet<NodeId> = (0..100).map(NodeId::from).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(5)), "n5");
        assert_eq!(format!("{:?}", NodeId::new(5)), "n5");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
