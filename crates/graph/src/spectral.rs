//! Spectral estimates for the lazy random walk.
//!
//! The paper's analysis works with the lazy random-walk matrix of a Δ-regular benign
//! graph. For the experiment harness we estimate its spectral gap `1 - λ₂` by power
//! iteration (with deflation of the all-ones stationary vector) and expose the
//! corresponding approximate Fiedler embedding, which [`crate::cuts::conductance_estimate`]
//! uses for sweep cuts. Cheeger's inequality `Φ²/2 ≤ 1 - λ₂ ≤ 2Φ` then brackets the
//! conductance.

use crate::{NodeId, UGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One multiplication `y = P x` with the lazy random-walk matrix of `g`.
///
/// The walk at node `v` stays put with probability `1/2` and otherwise moves to a
/// uniformly random incident edge slot (self-loop slots also stay put). For irregular
/// graphs the walk normalizes by the node's own degree, which corresponds to the usual
/// lazy walk on the multigraph.
pub fn lazy_walk_step(g: &UGraph, x: &[f64]) -> Vec<f64> {
    let n = g.node_count();
    let mut y = vec![0.0; n];
    for v in 0..n {
        let deg = g.degree(NodeId::from(v));
        let keep = 0.5 * x[v];
        y[v] += keep;
        if deg == 0 {
            y[v] += 0.5 * x[v];
            continue;
        }
        let share = 0.5 * x[v] / deg as f64;
        for &w in g.neighbors(NodeId::from(v)) {
            y[w.index()] += share;
        }
    }
    y
}

/// Approximate second eigenvector ("Fiedler embedding") of the lazy random-walk matrix,
/// obtained by `iterations` rounds of power iteration with deflation of the constant
/// vector. Deterministic for a fixed `seed`.
pub fn fiedler_embedding(g: &UGraph, iterations: usize, seed: u64) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for _ in 0..iterations {
        deflate_and_normalize(&mut x);
        x = lazy_walk_step(g, &x);
    }
    deflate_and_normalize(&mut x);
    x
}

/// Estimates the spectral gap `1 - λ₂` of the lazy random-walk matrix by power
/// iteration. Larger gaps mean better expansion; by Cheeger's inequality
/// `gap/2 ≤ Φ ≤ sqrt(2·gap)`.
pub fn spectral_gap(g: &UGraph, iterations: usize, seed: u64) -> f64 {
    let n = g.node_count();
    if n <= 1 {
        return 1.0;
    }
    let mut x = fiedler_embedding(g, iterations, seed);
    deflate_and_normalize(&mut x);
    let y = lazy_walk_step(g, &x);
    // Rayleigh quotient approximates λ₂.
    let num: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    let den: f64 = x.iter().map(|a| a * a).sum();
    if den == 0.0 {
        return 1.0;
    }
    let lambda2 = (num / den).clamp(-1.0, 1.0);
    1.0 - lambda2
}

/// Conductance lower bound from Cheeger's inequality: `Φ ≥ gap / 2`.
pub fn cheeger_lower_bound(g: &UGraph, iterations: usize, seed: u64) -> f64 {
    spectral_gap(g, iterations, seed) / 2.0
}

fn deflate_and_normalize(x: &mut [f64]) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn to_ug(g: &crate::DiGraph) -> UGraph {
        let mut u = UGraph::new(g.node_count());
        for (a, b) in g.edges() {
            if a != b {
                u.add_edge(a, b);
            }
        }
        u
    }

    #[test]
    fn lazy_walk_preserves_mass() {
        let g = to_ug(&generators::cycle(10));
        let x = vec![0.1; 10];
        let y = lazy_walk_step(&g, &x);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lazy_walk_on_isolated_node_keeps_mass() {
        let g = UGraph::new(1);
        let y = lazy_walk_step(&g, &[1.0]);
        assert!((y[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_of_expander_exceeds_gap_of_line() {
        let line = to_ug(&generators::line(64));
        let cube = to_ug(&generators::hypercube(6));
        let gap_line = spectral_gap(&line, 300, 1);
        let gap_cube = spectral_gap(&cube, 300, 1);
        assert!(
            gap_cube > 4.0 * gap_line,
            "expected expander gap {gap_cube} to dominate line gap {gap_line}"
        );
    }

    #[test]
    fn cheeger_bound_is_consistent_with_exact_conductance() {
        let g = to_ug(&generators::cycle(12));
        let exact = crate::cuts::exact_conductance(&g);
        let lower = cheeger_lower_bound(&g, 400, 2);
        assert!(lower <= exact + 0.05, "lower {lower} vs exact {exact}");
    }

    #[test]
    fn fiedler_embedding_separates_line_halves() {
        let g = to_ug(&generators::line(32));
        let emb = fiedler_embedding(&g, 400, 3);
        // The embedding should be monotone-ish along the line: the two endpoints must
        // have opposite signs.
        assert!(emb[0] * emb[31] < 0.0);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = UGraph::new(0);
        assert!(fiedler_embedding(&g, 10, 0).is_empty());
        assert_eq!(spectral_gap(&g, 10, 0), 1.0);
    }
}
