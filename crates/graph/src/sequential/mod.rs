//! Centralized reference algorithms.
//!
//! Every distributed algorithm in the workspace is validated against one of these
//! sequential implementations: union-find connected components, Tarjan's biconnectivity
//! (articulation points, bridges, biconnected components), spanning trees, and maximal
//! independent sets.

mod biconnectivity;
mod mis;
mod spanning_tree;
mod union_find;

pub use biconnectivity::{biconnected_components, BiconnectivityInfo};
pub use mis::{greedy_mis, is_maximal_independent_set};
pub use spanning_tree::{bfs_tree, kruskal_spanning_forest};
pub use union_find::UnionFind;
