//! Disjoint-set forest (union-find) with path compression and union by rank.

/// A disjoint-set forest over elements `0..n`.
///
/// # Example
///
/// ```
/// use overlay_graph::sequential::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure contains no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` lie in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn path_compression_keeps_results_consistent() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        let root = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), root);
        }
    }
}
