//! Sequential maximal independent sets and their validity checker.

use crate::{NodeId, UGraph};

/// Computes a maximal independent set greedily in identifier order.
pub fn greedy_mis(g: &UGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut blocked = vec![false; n];
    let mut mis = Vec::new();
    for v in 0..n {
        if blocked[v] {
            continue;
        }
        mis.push(NodeId::from(v));
        for &w in g.neighbors(NodeId::from(v)) {
            blocked[w.index()] = true;
        }
        blocked[v] = true;
    }
    mis
}

/// Checks whether `set` is a maximal independent set of `g`:
/// 1. no two members are adjacent (independence), and
/// 2. every non-member has a member neighbor (maximality).
///
/// Self-loops are ignored (a node is never considered its own neighbor).
pub fn is_maximal_independent_set(g: &UGraph, set: &[NodeId]) -> bool {
    let n = g.node_count();
    let mut in_set = vec![false; n];
    for &v in set {
        if v.index() >= n {
            return false;
        }
        in_set[v.index()] = true;
    }
    // Independence.
    for &v in set {
        for &w in g.neighbors(v) {
            if w != v && in_set[w.index()] {
                return false;
            }
        }
    }
    // Maximality.
    for v in 0..n {
        if in_set[v] {
            continue;
        }
        let covered = g
            .neighbors(NodeId::from(v))
            .iter()
            .any(|&w| w.index() != v && in_set[w.index()]);
        if !covered {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_mis_is_valid_on_various_graphs() {
        for g in [
            generators::line(20),
            generators::cycle(21),
            generators::star(30),
            generators::grid(5, 6),
            generators::connected_random(64, 0.1, 5),
        ] {
            let u = g.to_undirected();
            let mis = greedy_mis(&u);
            assert!(is_maximal_independent_set(&u, &mis));
        }
    }

    #[test]
    fn greedy_mis_on_star_picks_center() {
        let u = generators::star(10).to_undirected();
        let mis = greedy_mis(&u);
        assert_eq!(mis, vec![NodeId::from(0usize)]);
    }

    #[test]
    fn checker_rejects_non_independent_sets() {
        let u = generators::line(4).to_undirected();
        assert!(!is_maximal_independent_set(
            &u,
            &[NodeId::from(0usize), NodeId::from(1usize)]
        ));
    }

    #[test]
    fn checker_rejects_non_maximal_sets() {
        let u = generators::line(5).to_undirected();
        // {0} leaves nodes 2..4 uncovered.
        assert!(!is_maximal_independent_set(&u, &[NodeId::from(0usize)]));
    }

    #[test]
    fn checker_accepts_valid_set_on_empty_graph() {
        let u = UGraph::new(3);
        // Every node is isolated, so the MIS must contain all of them.
        assert!(is_maximal_independent_set(
            &u,
            &[0.into(), 1.into(), 2.into()]
        ));
        assert!(!is_maximal_independent_set(&u, &[0.into(), 1.into()]));
    }
}
