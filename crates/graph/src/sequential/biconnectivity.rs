//! Tarjan's sequential biconnectivity algorithm (articulation points, bridges, and
//! biconnected components), used as the ground truth for the distributed
//! Tarjan–Vishkin implementation of Theorem 1.4.

use crate::{NodeId, UGraph};
use std::collections::BTreeSet;

/// The result of a biconnectivity analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BiconnectivityInfo {
    /// Articulation points (cut vertices): removing one increases the number of
    /// connected components.
    pub cut_vertices: BTreeSet<NodeId>,
    /// Bridge edges (cut edges), each reported with the smaller endpoint first.
    pub bridges: BTreeSet<(NodeId, NodeId)>,
    /// Biconnected components, each given as the set of (undirected, deduplicated)
    /// edges it contains; edges are reported with the smaller endpoint first.
    pub components: Vec<BTreeSet<(NodeId, NodeId)>>,
}

impl BiconnectivityInfo {
    /// Returns `true` if the whole graph is biconnected: it is connected, has at least
    /// three nodes (or is a single edge), and has no cut vertices.
    pub fn is_biconnected(&self, g: &UGraph) -> bool {
        crate::analysis::is_connected(g)
            && self.cut_vertices.is_empty()
            && self.components.len() <= 1
    }

    /// The biconnected component index of every edge (smaller endpoint first), if any.
    pub fn component_of_edge(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let key = normalize(u, v);
        self.components.iter().position(|c| c.contains(&key))
    }
}

fn normalize(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Computes the biconnected components, cut vertices, and bridges of the (simple
/// undirected view of the) graph using Tarjan's DFS low-link algorithm, implemented
/// iteratively so that large graphs do not overflow the stack.
pub fn biconnected_components(g: &UGraph) -> BiconnectivityInfo {
    let simple = g.simplify();
    let n = simple.node_count();
    let mut info = BiconnectivityInfo::default();

    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut edge_stack: Vec<(NodeId, NodeId)> = Vec::new();
    // Track child counts of DFS roots for the articulation-point rule.
    let mut root_children = vec![0usize; n];

    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        // Iterative DFS: each frame is (node, next neighbor index to process).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        disc[start] = timer;
        low[start] = timer;
        timer += 1;

        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let neighbors = simple.neighbors(NodeId::from(v));
            if *next < neighbors.len() {
                let w = neighbors[*next].index();
                *next += 1;
                if disc[w] == usize::MAX {
                    parent[w] = v;
                    if v == start {
                        root_children[start] += 1;
                    }
                    edge_stack.push((NodeId::from(v), NodeId::from(w)));
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    stack.push((w, 0));
                } else if w != parent[v] && disc[w] < disc[v] {
                    // Back edge.
                    edge_stack.push((NodeId::from(v), NodeId::from(w)));
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] >= disc[p] {
                        // p is an articulation point (unless it is a root, handled
                        // below); pop the component's edges.
                        if parent[p] != usize::MAX || root_children[p] >= 2 {
                            info.cut_vertices.insert(NodeId::from(p));
                        }
                        let mut component = BTreeSet::new();
                        while let Some(&(a, b)) = edge_stack.last() {
                            let between =
                                disc[a.index()] >= disc[v] || (a.index() == p && b.index() == v);
                            if !between {
                                break;
                            }
                            edge_stack.pop();
                            component.insert(normalize(a, b));
                        }
                        if !component.is_empty() {
                            info.components.push(component);
                        }
                    }
                    if low[v] > disc[p] {
                        info.bridges
                            .insert(normalize(NodeId::from(p), NodeId::from(v)));
                    }
                }
            }
        }
        // Any leftover edges on the stack form one final component of this DFS tree.
        if !edge_stack.is_empty() {
            let component: BTreeSet<(NodeId, NodeId)> =
                edge_stack.drain(..).map(|(a, b)| normalize(a, b)).collect();
            info.components.push(component);
        }
    }

    // Root articulation rule for roots whose components were all flushed in the loop.
    for v in 0..n {
        if parent[v] == usize::MAX && root_children[v] >= 2 {
            info.cut_vertices.insert(NodeId::from(v));
        }
    }

    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_is_biconnected() {
        let g = generators::cycle(8).to_undirected();
        let info = biconnected_components(&g);
        assert!(info.cut_vertices.is_empty());
        assert!(info.bridges.is_empty());
        assert_eq!(info.components.len(), 1);
        assert!(info.is_biconnected(&g));
        assert_eq!(info.components[0].len(), 8);
    }

    #[test]
    fn line_edges_are_all_bridges() {
        let g = generators::line(6).to_undirected();
        let info = biconnected_components(&g);
        assert_eq!(info.bridges.len(), 5);
        assert_eq!(info.components.len(), 5);
        // Interior nodes are cut vertices.
        assert_eq!(info.cut_vertices.len(), 4);
        assert!(!info.is_biconnected(&g));
    }

    #[test]
    fn chained_cycles_have_expected_structure() {
        let g = generators::chained_cycles(3, 5).to_undirected();
        let info = biconnected_components(&g);
        assert_eq!(info.components.len(), 3);
        assert_eq!(info.cut_vertices.len(), 2);
        assert!(info.bridges.is_empty());
        for c in &info.components {
            assert_eq!(c.len(), 5);
        }
    }

    #[test]
    fn star_center_is_the_only_cut_vertex() {
        let g = generators::star(6).to_undirected();
        let info = biconnected_components(&g);
        assert_eq!(
            info.cut_vertices.iter().copied().collect::<Vec<_>>(),
            vec![NodeId::from(0usize)]
        );
        assert_eq!(info.bridges.len(), 5);
        assert_eq!(info.components.len(), 5);
    }

    #[test]
    fn figure_one_example() {
        // The paper's Figure 1 pattern: a triangle u-v-w plus a pendant edge. The
        // triangle is one biconnected component and the pendant edge another; the
        // shared vertex is a cut vertex.
        let mut g = UGraph::new(4);
        g.add_edge(0.into(), 1.into()); // u - v
        g.add_edge(1.into(), 2.into()); // v - w
        g.add_edge(0.into(), 2.into()); // u - w
        g.add_edge(2.into(), 3.into()); // w - x (pendant)
        let info = biconnected_components(&g);
        assert_eq!(info.components.len(), 2);
        assert_eq!(
            info.cut_vertices.iter().copied().collect::<Vec<_>>(),
            vec![NodeId::from(2usize)]
        );
        assert_eq!(info.bridges.len(), 1);
        assert_eq!(
            info.component_of_edge(0.into(), 1.into()),
            info.component_of_edge(1.into(), 2.into())
        );
        assert_ne!(
            info.component_of_edge(0.into(), 1.into()),
            info.component_of_edge(2.into(), 3.into())
        );
    }

    #[test]
    fn disconnected_graph_components_are_per_part() {
        let g = generators::disjoint_union(&[generators::cycle(4), generators::cycle(3)])
            .to_undirected();
        let info = biconnected_components(&g);
        assert_eq!(info.components.len(), 2);
        assert!(info.cut_vertices.is_empty());
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let mut g = UGraph::new(5);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(2.into(), 0.into());
        g.add_edge(2.into(), 3.into());
        g.add_edge(3.into(), 4.into());
        g.add_edge(4.into(), 2.into());
        let info = biconnected_components(&g);
        assert_eq!(info.components.len(), 2);
        assert_eq!(
            info.cut_vertices.iter().copied().collect::<Vec<_>>(),
            vec![NodeId::from(2usize)]
        );
        assert!(info.bridges.is_empty());
    }

    #[test]
    fn parallel_edges_do_not_create_bridges() {
        let mut g = UGraph::new(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        // The simple view has a single edge 0-1, which is a bridge of the simple graph.
        let info = biconnected_components(&g);
        assert_eq!(info.components.len(), 1);
        assert_eq!(info.bridges.len(), 1);
    }
}
