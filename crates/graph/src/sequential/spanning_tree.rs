//! Sequential spanning trees / forests.

use super::UnionFind;
use crate::{NodeId, UGraph};
use std::collections::VecDeque;

/// Computes a spanning forest by Kruskal-style edge scanning (no weights: the first
/// edge that connects two components wins). Returns the forest edges.
pub fn kruskal_spanning_forest(g: &UGraph) -> Vec<(NodeId, NodeId)> {
    let mut uf = UnionFind::new(g.node_count());
    let mut forest = Vec::new();
    for (u, v) in g.edges() {
        if u != v && uf.union(u.index(), v.index()) {
            forest.push((u, v));
        }
    }
    forest
}

/// Computes a BFS tree rooted at `root`, returned as a parent vector (the root points to
/// itself; unreachable nodes also point to themselves and are reported separately).
///
/// Returns `(parent, unreachable)`.
pub fn bfs_tree(g: &UGraph, root: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = g.node_count();
    let mut parent: Vec<NodeId> = (0..n).map(NodeId::from).collect();
    let mut visited = vec![false; n];
    if root.index() < n {
        visited[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = u;
                    queue.push_back(v);
                }
            }
        }
    }
    let unreachable = (0..n).filter(|&v| !visited[v]).map(NodeId::from).collect();
    (parent, unreachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analysis, generators};

    #[test]
    fn kruskal_on_connected_graph_has_n_minus_1_edges() {
        let g = generators::grid(4, 4).to_undirected();
        let forest = kruskal_spanning_forest(&g);
        assert_eq!(forest.len(), 15);
    }

    #[test]
    fn kruskal_on_forest_counts_components() {
        let g = generators::disjoint_union(&[generators::line(5), generators::cycle(4)])
            .to_undirected();
        let forest = kruskal_spanning_forest(&g);
        assert_eq!(forest.len(), 9 - 2);
    }

    #[test]
    fn bfs_tree_is_spanning_tree() {
        let g = generators::connected_random(50, 0.05, 9).to_undirected();
        let (parent, unreachable) = bfs_tree(&g, 0.into());
        assert!(unreachable.is_empty());
        assert!(analysis::is_spanning_tree(&g, &parent));
    }

    #[test]
    fn bfs_tree_reports_unreachable() {
        let g = UGraph::new(3);
        let (_, unreachable) = bfs_tree(&g, 0.into());
        assert_eq!(unreachable.len(), 2);
    }
}
