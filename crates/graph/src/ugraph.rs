//! Undirected multigraphs with explicit self-loops.
//!
//! The *benign* communication graphs maintained by `CreateExpander` are Δ-regular
//! multigraphs in which self-loops are first-class edges (a lazy random-walk step may
//! stay put by traversing a loop). [`UGraph`] therefore stores, for every node, a list
//! of incident *edge slots*: a non-loop edge `{u, v}` contributes one slot `v` at `u`
//! and one slot `u` at `v`; a self-loop at `v` contributes a single slot `v` at `v`.
//! A uniformly random incident edge is then simply a uniformly random slot.

use crate::NodeId;
use std::collections::BTreeSet;

/// An undirected multigraph over nodes `0..n` with explicit self-loops.
///
/// # Example
///
/// ```
/// use overlay_graph::UGraph;
///
/// let mut g = UGraph::new(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_self_loop(2.into());
/// assert_eq!(g.degree(0.into()), 1);
/// assert_eq!(g.degree(2.into()), 1);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UGraph {
    adj: Vec<Vec<NodeId>>,
}

impl UGraph {
    /// Creates an undirected multigraph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges, counting multiplicities; a self-loop counts as one
    /// edge.
    pub fn edge_count(&self) -> usize {
        let slots: usize = self.adj.iter().map(Vec::len).sum();
        let loops: usize = self
            .adj
            .iter()
            .enumerate()
            .map(|(v, a)| a.iter().filter(|&&w| w.index() == v).count())
            .sum();
        (slots - loops) / 2 + loops
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from)
    }

    /// Adds an undirected edge `{u, v}`.
    ///
    /// If `u == v` this adds a self-loop (a single slot).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u.index() < self.adj.len(), "node out of range");
        assert!(v.index() < self.adj.len(), "node out of range");
        if u == v {
            self.adj[u.index()].push(v);
        } else {
            self.adj[u.index()].push(v);
            self.adj[v.index()].push(u);
        }
    }

    /// Adds a self-loop at `v`.
    pub fn add_self_loop(&mut self, v: NodeId) {
        self.add_edge(v, v);
    }

    /// Degree of `v`: its number of incident edge slots (self-loops count once).
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// The incident edge slots of `v` (neighbors with multiplicity, self-loops as `v`).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// Number of self-loop slots at `v`.
    pub fn self_loops(&self, v: NodeId) -> usize {
        self.adj[v.index()].iter().filter(|&&w| w == v).count()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Returns `true` if every node has exactly degree `delta`.
    pub fn is_regular(&self, delta: usize) -> bool {
        self.adj.iter().all(|a| a.len() == delta)
    }

    /// Returns all undirected edges `(u, v)` with `u <= v`, with multiplicity.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for (u, a) in self.adj.iter().enumerate() {
            for &v in a {
                if v.index() >= u {
                    edges.push((NodeId::from(u), v));
                }
            }
        }
        edges
    }

    /// Returns the distinct (deduplicated) non-loop neighbor set of `v`.
    pub fn distinct_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self.adj[v.index()]
            .iter()
            .copied()
            .filter(|&w| w != v)
            .collect();
        set.into_iter().collect()
    }

    /// Builds an undirected graph from a list of edges.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = UGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Returns the simple-graph version: parallel edges merged, self-loops removed.
    pub fn simplify(&self) -> UGraph {
        let mut seen = BTreeSet::new();
        for (u, a) in self.adj.iter().enumerate() {
            for &v in a {
                if v.index() != u {
                    let key = if u < v.index() {
                        (u, v.index())
                    } else {
                        (v.index(), u)
                    };
                    seen.insert(key);
                }
            }
        }
        let mut g = UGraph::new(self.adj.len());
        for (a, b) in seen {
            g.add_edge(NodeId::from(a), NodeId::from(b));
        }
        g
    }

    /// Number of edge slots at nodes of `set` whose other endpoint lies outside `set`
    /// (the numerator of the conductance of `set`).
    pub fn boundary_size(&self, set: &BTreeSet<NodeId>) -> usize {
        set.iter()
            .map(|&v| {
                self.adj[v.index()]
                    .iter()
                    .filter(|w| !set.contains(w))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = UGraph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn edge_count_with_loops() {
        let mut g = UGraph::new(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        g.add_self_loop(2.into());
        g.add_self_loop(2.into());
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0.into()), 2);
        assert_eq!(g.degree(2.into()), 2);
        assert_eq!(g.self_loops(2.into()), 2);
        assert_eq!(g.self_loops(0.into()), 0);
    }

    #[test]
    fn regularity_check() {
        let mut g = UGraph::new(2);
        g.add_edge(0.into(), 1.into());
        g.add_self_loop(0.into());
        g.add_self_loop(1.into());
        assert!(g.is_regular(2));
        assert!(!g.is_regular(3));
    }

    #[test]
    fn distinct_neighbors_excludes_loops_and_dups() {
        let mut g = UGraph::new(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_self_loop(0.into());
        assert_eq!(
            g.distinct_neighbors(0.into()),
            vec![NodeId::from(1usize), NodeId::from(2usize)]
        );
    }

    #[test]
    fn boundary_of_singleton() {
        let mut g = UGraph::new(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_self_loop(1.into());
        let set: BTreeSet<NodeId> = [NodeId::from(1usize)].into_iter().collect();
        // node 1 has slots [0, 2, 1]; boundary counts 0 and 2 but not the loop
        assert_eq!(g.boundary_size(&set), 2);
    }

    #[test]
    fn simplify_removes_multiplicity() {
        let mut g = UGraph::new(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        g.add_self_loop(2.into());
        let s = g.simplify();
        assert_eq!(s.edge_count(), 1);
        assert_eq!(s.degree(2.into()), 0);
    }

    #[test]
    fn edges_listing_has_multiplicity() {
        let mut g = UGraph::new(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        g.add_self_loop(0.into());
        assert_eq!(g.edges().len(), 3);
    }
}
