//! Reliable-delivery transport for `overlay-netsim` protocols.
//!
//! The paper's protocols (and the NCC0 model they live in) assume every sent
//! message is delivered in the next round. The fault layer of `overlay-netsim`
//! shows how brittle that assumption is: a fraction of a percent of message loss
//! is enough to strand the one-round binarization phase of the construction
//! pipeline. This crate provides the missing session layer as a *composable
//! adapter* rather than something each protocol reimplements: [`Reliable<P>`]
//! wraps any [`overlay_netsim::Protocol`] and gives it at-least-once delivery
//! with exactly-once *semantics* at the protocol boundary —
//!
//! * **per-peer sequence numbers** on every data message,
//! * **cumulative + selective acknowledgments** (one ack message per peer per
//!   round with news, carrying the highest contiguous sequence received plus a
//!   bitmap of out-of-order receptions),
//! * **deterministic retransmission timers in rounds** (no wall-clock, no
//!   randomness: a message unacknowledged for
//!   [`TransportConfig::retransmit_after`] rounds is re-sent, up to
//!   [`TransportConfig::max_retransmits`] times),
//! * **duplicate suppression** at the receiver, so the wrapped protocol never
//!   sees a payload twice, and
//! * a **per-peer window** ([`TransportConfig::window`]) bounding in-flight
//!   traffic so the adapter's overhead stays within the NCC0 `O(log n)`
//!   per-round budget (the simulator's send/receive caps apply to transport
//!   traffic exactly as to protocol traffic — an ack lost to the cap is simply
//!   retransmitted into).
//!
//! The adapter is *transparent on a clean network*: data is delivered one round
//! after sending (the same latency as a bare send), the wrapped protocol's inbox
//! contents and order are identical to the unwrapped run, and the node RNG is
//! never touched by the transport — so a loss-free wrapped run reproduces the
//! unwrapped run's random stream and final state byte for byte, with only ack
//! messages added on the wire.
//!
//! Overhead is observable at every level: the simulator's
//! [`overlay_netsim::RoundMetrics`] gain `retransmits` / `acks` /
//! `dupes_dropped` counters (reported through [`overlay_netsim::Ctx`]'s
//! `note_*` hooks), and each node keeps local [`ReliableStats`] totals.
//!
//! # Example
//!
//! ```
//! use overlay_graph::NodeId;
//! use overlay_netsim::{Ctx, Envelope, FaultPlan, Protocol, SimConfig, Simulator};
//! use overlay_transport::{Reliable, TransportConfig};
//!
//! /// Sends one message to the next node; done once it has heard from its
//! /// predecessor.
//! struct Ring { next: NodeId, heard: bool }
//! impl Protocol for Ring {
//!     type Message = u8;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) { ctx.send_global(self.next, 1); }
//!     fn on_round(&mut self, _ctx: &mut Ctx<'_, u8>, inbox: &[Envelope<u8>]) {
//!         self.heard |= !inbox.is_empty();
//!     }
//!     fn is_done(&self) -> bool { self.heard }
//! }
//!
//! let n = 8;
//! let nodes: Vec<_> = (0..n)
//!     .map(|i| Reliable::new(
//!         Ring { next: NodeId::from((i + 1) % n), heard: false },
//!         TransportConfig::default(),
//!     ))
//!     .collect();
//! // 30% message loss would kill some of the bare sends; the transport retries.
//! let config = SimConfig::default().with_faults(FaultPlan::default().with_drop_prob(0.3));
//! let mut sim = Simulator::new(nodes, config);
//! let outcome = sim.run(64);
//! assert!(outcome.all_done);
//! assert!(sim.nodes().iter().all(|r| r.inner().heard));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reliable;

pub use overlay_netsim::TransportConfig;
pub use reliable::{Reliable, ReliableStats, TransportMsg};
