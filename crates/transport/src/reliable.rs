//! The [`Reliable`] protocol adapter: sequence numbers, acks, retransmission and
//! duplicate suppression around an arbitrary inner [`Protocol`].

use overlay_graph::NodeId;
use overlay_netsim::wire::{Wire, WireError};
use overlay_netsim::{Channel, Ctx, Envelope, Protocol, TransportConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The wire format of the reliable layer: the inner protocol's payloads wrapped
/// with a per-peer sequence number, plus acknowledgment messages.
///
/// Both variants are `O(log n)` bits on top of the payload (a sequence number and
/// a constant-size bitmap), so a wrapped protocol still satisfies the NCC0
/// message-size discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportMsg<M> {
    /// An inner-protocol payload, tagged with the sender's per-peer sequence
    /// number (sequence numbers start at 1 and never repeat within a run).
    Data {
        /// Position of this payload in the sender→receiver stream.
        seq: u32,
        /// The lowest sequence number the sender still holds open: everything
        /// below it is acknowledged or *abandoned* and will never be re-sent.
        /// Lets the receiver advance its cumulative horizon past abandoned
        /// gaps — without it, one abandoned payload would wedge the cumulative
        /// ack below the gap forever, and once the stream moved more than the
        /// selective bitmap's 64 sequences past it, every later (delivered!)
        /// message would be retransmitted to exhaustion.
        floor: u32,
        /// The wrapped protocol message.
        payload: M,
    },
    /// A (cumulative + selective) acknowledgment for the reverse direction.
    Ack {
        /// Every sequence number `<= cum` has been received (`0` = none yet).
        cum: u32,
        /// Bit `i` set means sequence `cum + 1 + i` was received out of order.
        sel: u64,
    },
}

impl<M: Wire> Wire for TransportMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TransportMsg::Data {
                seq,
                floor,
                payload,
            } => {
                out.push(0);
                seq.encode(out);
                floor.encode(out);
                payload.encode(out);
            }
            TransportMsg::Ack { cum, sel } => {
                out.push(1);
                cum.encode(out);
                sel.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(TransportMsg::Data {
                seq: u32::decode(buf)?,
                floor: u32::decode(buf)?,
                payload: M::decode(buf)?,
            }),
            1 => Ok(TransportMsg::Ack {
                cum: u32::decode(buf)?,
                sel: u64::decode(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// One queued-or-in-flight outgoing payload.
#[derive(Clone, Debug)]
struct OutEntry<M> {
    seq: u32,
    channel: Channel,
    payload: M,
    /// Round of the most recent send; `None` while the window keeps it queued.
    last_sent: Option<usize>,
    /// Times this entry went on the wire (1 = the original send).
    sends: usize,
    /// Acknowledged (or abandoned): the payload will never be sent again.
    closed: bool,
}

/// Per-peer transport state: the outgoing stream (sender role) and the incoming
/// dedup horizon (receiver role).
#[derive(Clone, Debug)]
struct PeerState<M> {
    /// Sequence number the next enqueued payload will get.
    next_seq: u32,
    /// Outgoing entries in sequence order; sent entries form a prefix.
    outgoing: VecDeque<OutEntry<M>>,
    /// Number of sent, unacknowledged, unabandoned entries (window occupancy).
    in_flight: usize,
    /// Every incoming sequence `<= cum_recv` has been delivered.
    cum_recv: u32,
    /// Incoming sequences received out of order (all `> cum_recv`).
    above: BTreeSet<u32>,
    /// An ack to this peer is owed at the end of the current round.
    ack_pending: bool,
    /// The failure detector's verdict: the peer exhausted a retransmission
    /// budget and is presumed crashed; our sender role to it is closed for the
    /// rest of the run. Only ever set when
    /// [`TransportConfig::failure_detector`] is on.
    dead: bool,
}

impl<M> Default for PeerState<M> {
    fn default() -> Self {
        PeerState {
            next_seq: 1,
            outgoing: VecDeque::new(),
            in_flight: 0,
            cum_recv: 0,
            above: BTreeSet::new(),
            ack_pending: false,
            dead: false,
        }
    }
}

impl<M> PeerState<M> {
    /// Records an incoming data sequence; returns `true` if it is fresh (first
    /// delivery) and `false` for a duplicate.
    fn receive_data(&mut self, seq: u32) -> bool {
        if seq <= self.cum_recv || !self.above.insert(seq) {
            return false;
        }
        while self.above.remove(&(self.cum_recv + 1)) {
            self.cum_recv += 1;
        }
        true
    }

    /// Advances the cumulative horizon past sequences the sender declared
    /// closed (acknowledged or abandoned — they will never be re-sent, so
    /// waiting for them would wedge the ack stream forever).
    fn advance_floor(&mut self, floor: u32) {
        while self.cum_recv + 1 < floor {
            self.cum_recv += 1;
            self.above.remove(&self.cum_recv);
        }
        // The gap may have been the only thing holding back a received run.
        while self.above.remove(&(self.cum_recv + 1)) {
            self.cum_recv += 1;
        }
    }

    /// Applies an acknowledgment from this peer to the outgoing stream.
    fn handle_ack(&mut self, cum: u32, sel: u64) {
        for entry in self.outgoing.iter_mut() {
            if entry.closed || entry.last_sent.is_none() {
                continue;
            }
            let acked = entry.seq <= cum
                || (u64::from(entry.seq - cum - 1) < 64
                    && sel & (1u64 << (entry.seq - cum - 1)) != 0);
            if acked {
                entry.closed = true;
                self.in_flight -= 1;
            }
        }
        self.pop_closed();
    }

    /// Drops the closed prefix of the outgoing queue.
    fn pop_closed(&mut self) {
        while self.outgoing.front().is_some_and(|e| e.closed) {
            self.outgoing.pop_front();
        }
    }

    /// The sender-side stream floor: the lowest sequence still open (nothing
    /// below it will ever be re-sent). The outgoing queue's front is never
    /// closed (`pop_closed` maintains that invariant), so its sequence — or
    /// `next_seq` when the queue is drained — is exactly that bound.
    fn floor(&self) -> u32 {
        self.outgoing.front().map_or(self.next_seq, |e| e.seq)
    }

    /// The cumulative/selective ack summarizing everything received so far.
    fn ack_message(&self) -> TransportMsg<M> {
        let mut sel = 0u64;
        for &seq in &self.above {
            let off = u64::from(seq - self.cum_recv - 1);
            if off < 64 {
                sel |= 1u64 << off;
            }
        }
        TransportMsg::Ack {
            cum: self.cum_recv,
            sel,
        }
    }
}

/// Per-node lifetime totals of the transport layer (the per-round equivalents go
/// to [`overlay_netsim::RoundMetrics`] via the [`Ctx`] hooks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Fresh payloads handed to the inner protocol.
    pub delivered_payloads: u64,
    /// Duplicate payloads suppressed before the inner protocol saw them.
    pub dupes_dropped: u64,
    /// Data messages re-sent after the retransmission timer fired.
    pub retransmits: u64,
    /// Acknowledgment messages sent.
    pub acks_sent: u64,
    /// Payloads abandoned after [`TransportConfig::max_retransmits`] resends
    /// (the peer is presumed crashed or unreachable forever). With the
    /// per-peer failure detector on, this also counts payloads abandoned in
    /// bulk when their peer was declared dead, and payloads dropped at the
    /// door because the peer already was.
    pub abandoned: u64,
    /// Peers declared dead by the per-peer failure detector (always `0` when
    /// [`TransportConfig::failure_detector`] is off).
    pub peers_failed: u64,
}

/// Wraps an inner [`Protocol`] with at-least-once delivery and duplicate
/// suppression; see the crate docs for the full contract.
///
/// The adapter is itself a [`Protocol`] whose message type is
/// [`TransportMsg<P::Message>`], so it runs in the unmodified simulator; capacity
/// caps and fault injection apply to transport traffic exactly as to protocol
/// traffic. The adapter never touches the node's RNG, keeping the inner
/// protocol's random stream identical to an unwrapped run.
///
/// [`Protocol::is_done`] for the wrapped node requires *both* the inner protocol
/// to be done *and* every outgoing payload to be acknowledged or abandoned — this
/// is what keeps the simulation alive long enough for retransmissions to rescue
/// protocols (like the pipeline's one-round binarization) that otherwise
/// terminate before their lost messages could be recovered.
#[derive(Clone, Debug)]
pub struct Reliable<P: Protocol> {
    inner: P,
    config: TransportConfig,
    peers: BTreeMap<NodeId, PeerState<P::Message>>,
    /// Reusable buffer the inner protocol's sends are collected in each round.
    inner_outbox: Vec<(NodeId, Channel, P::Message)>,
    /// Reusable buffer of fresh payloads handed to the inner protocol.
    inner_inbox: Vec<Envelope<P::Message>>,
    /// The adapter's own round clock: `0` at `on_start`, advanced once per
    /// `on_round`. Retransmission timers compare ticks, never the scheduler's
    /// round number, so the adapter behaves identically whether it is driven
    /// by the lockstep simulator or by a socket backend whose synchronizer
    /// has no global round counter to offer. Under the simulator the tick
    /// equals `ctx.round()` exactly, so this is a pure refactor there.
    tick: usize,
    stats: ReliableStats,
}

impl<P: Protocol> Reliable<P> {
    /// Wraps `inner` with the given transport configuration.
    pub fn new(inner: P, config: TransportConfig) -> Self {
        Reliable {
            inner,
            config,
            peers: BTreeMap::new(),
            inner_outbox: Vec::new(),
            inner_inbox: Vec::new(),
            tick: 0,
            stats: ReliableStats::default(),
        }
    }

    /// The wrapped protocol state.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol state.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps the adapter, returning the inner protocol state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// The adapter's configuration.
    pub fn config(&self) -> TransportConfig {
        self.config
    }

    /// Lifetime transport totals of this node.
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }

    /// `true` while some outgoing payload is neither acknowledged nor abandoned.
    pub fn has_outstanding(&self) -> bool {
        self.peers.values().any(|p| !p.outgoing.is_empty())
    }

    /// Moves the inner protocol's sends of this round into the per-peer outgoing
    /// queues (assigning sequence numbers in send order).
    fn collect_inner_sends(&mut self) {
        let mut out = std::mem::take(&mut self.inner_outbox);
        for (to, channel, payload) in out.drain(..) {
            let peer = self.peers.entry(to).or_default();
            if peer.dead {
                // The failure detector already wrote this peer off: the
                // payload can never be delivered, so it is abandoned at the
                // door instead of burning a fresh retransmission budget.
                self.stats.abandoned += 1;
                continue;
            }
            let seq = peer.next_seq;
            peer.next_seq += 1;
            peer.outgoing.push_back(OutEntry {
                seq,
                channel,
                payload,
                last_sent: None,
                sends: 0,
                closed: false,
            });
        }
        self.inner_outbox = out;
    }

    /// Sends queued entries while each peer's window has room (in sequence order,
    /// so per-peer FIFO is preserved — on a clean network this is exactly the
    /// inner protocol's send order).
    fn open_windows(&mut self, ctx: &mut Ctx<'_, TransportMsg<P::Message>>) {
        let round = self.tick;
        for (&to, peer) in self.peers.iter_mut() {
            if peer.in_flight >= self.config.window {
                continue;
            }
            let floor = peer.floor();
            let mut budget = self.config.window - peer.in_flight;
            for entry in peer.outgoing.iter_mut() {
                if budget == 0 {
                    break;
                }
                if entry.last_sent.is_some() || entry.closed {
                    continue;
                }
                entry.last_sent = Some(round);
                entry.sends = 1;
                peer.in_flight += 1;
                budget -= 1;
                ctx.send(
                    to,
                    entry.channel,
                    TransportMsg::Data {
                        seq: entry.seq,
                        floor,
                        payload: entry.payload.clone(),
                    },
                );
            }
        }
    }

    /// Re-sends every in-flight entry whose retransmission timer expired;
    /// abandons entries that exhausted their retransmission budget.
    fn retransmit_due(&mut self, ctx: &mut Ctx<'_, TransportMsg<P::Message>>) {
        let round = self.tick;
        for (&to, peer) in self.peers.iter_mut() {
            // Computed before any abandonment below: the floor only ever rises,
            // so a conservatively low value is always safe to advertise.
            let floor = peer.floor();
            for entry in peer.outgoing.iter_mut() {
                let Some(last_sent) = entry.last_sent else {
                    continue;
                };
                if entry.closed || round - last_sent < self.config.retransmit_after {
                    continue;
                }
                if entry.sends > self.config.max_retransmits {
                    // The peer has ignored every attempt: presumed gone for good.
                    entry.closed = true;
                    peer.in_flight -= 1;
                    self.stats.abandoned += 1;
                    ctx.note_give_up();
                    if self.config.failure_detector {
                        // Share the verdict across the whole stream: every
                        // other pending payload to this peer is abandoned now,
                        // and the single give-up above covers them all — a
                        // dead peer costs one give-up, not one per message.
                        peer.dead = true;
                        self.stats.peers_failed += 1;
                        for other in peer.outgoing.iter_mut() {
                            if !other.closed {
                                other.closed = true;
                                if other.last_sent.is_some() {
                                    peer.in_flight -= 1;
                                }
                                self.stats.abandoned += 1;
                            }
                        }
                        break;
                    }
                    continue;
                }
                entry.last_sent = Some(round);
                entry.sends += 1;
                self.stats.retransmits += 1;
                ctx.note_retransmit();
                ctx.send(
                    to,
                    entry.channel,
                    TransportMsg::Data {
                        seq: entry.seq,
                        floor,
                        payload: entry.payload.clone(),
                    },
                );
            }
            peer.pop_closed();
        }
    }

    /// Sends one cumulative/selective ack to every peer that delivered data this
    /// round (fresh or duplicate: a duplicate usually means our previous ack was
    /// lost, so it must be re-sent).
    ///
    /// Acks always travel the global channel: sequence numbers are per-peer, so
    /// one ack summarizes both channels' data, and every protocol currently run
    /// behind the adapter is NCC0 (global-only). Wrapping a hybrid protocol
    /// whose traffic is mostly `Channel::Local` would charge ack volume that
    /// scales with local traffic against the scarce global cap — a known
    /// limitation; local-channel ack discipline (CONGEST-compatible
    /// piggybacking) is future work.
    fn send_acks(&mut self, ctx: &mut Ctx<'_, TransportMsg<P::Message>>) {
        for (&to, peer) in self.peers.iter_mut() {
            if !peer.ack_pending {
                continue;
            }
            peer.ack_pending = false;
            self.stats.acks_sent += 1;
            ctx.note_ack();
            ctx.send_global(to, peer.ack_message());
        }
    }
}

impl<P: Protocol> Protocol for Reliable<P> {
    type Message = TransportMsg<P::Message>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        self.tick = 0;
        self.inner_outbox.clear();
        {
            let mut inner_ctx = ctx.derived(&mut self.inner_outbox);
            self.inner.on_start(&mut inner_ctx);
        }
        self.collect_inner_sends();
        self.open_windows(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Message>, inbox: &[Envelope<Self::Message>]) {
        self.tick += 1;
        // 1. Unwrap the round's arrivals: acks update the outgoing streams, fresh
        //    data is queued for the inner protocol, duplicates are suppressed.
        self.inner_inbox.clear();
        for env in inbox {
            let peer = self.peers.entry(env.from).or_default();
            match &env.payload {
                TransportMsg::Data {
                    seq,
                    floor,
                    payload,
                } => {
                    peer.ack_pending = true;
                    peer.advance_floor(*floor);
                    if peer.receive_data(*seq) {
                        self.stats.delivered_payloads += 1;
                        self.inner_inbox.push(Envelope {
                            from: env.from,
                            channel: env.channel,
                            payload: payload.clone(),
                        });
                    } else {
                        self.stats.dupes_dropped += 1;
                        ctx.note_dupe_dropped();
                    }
                }
                TransportMsg::Ack { cum, sel } => peer.handle_ack(*cum, *sel),
            }
        }

        // 2. Run the inner protocol on the deduplicated inbox; its sends are
        //    collected, sequenced and sent window-permitting (data first, then
        //    retransmissions, then acks, so the simulator's send cap sheds
        //    transport overhead before fresh payload).
        self.inner_outbox.clear();
        {
            let mut inner_ctx = ctx.derived(&mut self.inner_outbox);
            self.inner.on_round(&mut inner_ctx, &self.inner_inbox);
        }
        self.collect_inner_sends();
        self.open_windows(ctx);
        self.retransmit_due(ctx);
        self.send_acks(ctx);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done() && !self.has_outstanding()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_netsim::{CapacityModel, FaultPlan, SimConfig, Simulator};

    /// Each node sends `burst` uniquely-numbered messages to node 0 per round for
    /// `rounds` rounds and records every payload it receives, in order.
    #[derive(Clone, Debug)]
    struct Beacon {
        me: usize,
        burst: usize,
        rounds: usize,
        received: Vec<(usize, u32)>,
        done: bool,
    }

    impl Beacon {
        fn fleet(n: usize, burst: usize, rounds: usize) -> Vec<Beacon> {
            (0..n)
                .map(|me| Beacon {
                    me,
                    burst,
                    rounds,
                    received: Vec::new(),
                    done: false,
                })
                .collect()
        }

        fn fire(&self, ctx: &mut Ctx<'_, u32>, round: usize) {
            for k in 0..self.burst {
                let tag = (self.me * 1_000_000 + round * 1_000 + k) as u32;
                ctx.send_global(NodeId::from(0usize), tag);
            }
        }
    }

    impl Protocol for Beacon {
        type Message = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.me != 0 {
                self.fire(ctx, 0);
            }
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Envelope<u32>]) {
            for env in inbox {
                self.received.push((env.from.index(), env.payload));
            }
            if ctx.round() < self.rounds {
                if self.me != 0 {
                    self.fire(ctx, ctx.round());
                }
            } else {
                self.done = true;
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn wrap(nodes: Vec<Beacon>, config: TransportConfig) -> Vec<Reliable<Beacon>> {
        nodes
            .into_iter()
            .map(|b| Reliable::new(b, config))
            .collect()
    }

    fn lossy(seed: u64, drop: f64) -> SimConfig {
        SimConfig {
            caps: CapacityModel::Unbounded,
            seed,
            local_edges: None,
            faults: FaultPlan::default().with_drop_prob(drop),
            ..SimConfig::default()
        }
    }

    /// All payloads every sender fired, as node 0 would record them.
    fn all_payloads(nodes: &[Beacon]) -> Vec<(usize, u32)> {
        let mut want = Vec::new();
        for b in nodes {
            if b.me == 0 {
                continue;
            }
            for round in 0..b.rounds {
                for k in 0..b.burst {
                    want.push((b.me, (b.me * 1_000_000 + round * 1_000 + k) as u32));
                }
            }
        }
        want.sort_unstable();
        want
    }

    #[test]
    fn clean_network_is_a_transparent_pass_through() {
        let bare = {
            let mut sim = Simulator::new(Beacon::fleet(6, 2, 3), lossy(9, 0.0));
            sim.run(20);
            sim.into_nodes()
        };
        let wrapped = {
            let mut sim = Simulator::new(
                wrap(Beacon::fleet(6, 2, 3), TransportConfig::default()),
                lossy(9, 0.0),
            );
            let outcome = sim.run(20);
            assert!(outcome.all_done);
            // Only acks ride on top; nothing is ever re-sent or duplicated.
            assert_eq!(sim.metrics().total_retransmits(), 0);
            assert_eq!(sim.metrics().total_dupes_dropped(), 0);
            assert!(sim.metrics().total_acks() > 0);
            sim.into_nodes()
        };
        for (bare, wrapped) in bare.iter().zip(&wrapped) {
            // Identical inbox contents in identical order: the adapter added
            // latency nowhere and reordered nothing.
            assert_eq!(bare.received, wrapped.inner().received);
            assert_eq!(wrapped.stats().retransmits, 0);
            assert_eq!(wrapped.stats().dupes_dropped, 0);
            assert_eq!(wrapped.stats().abandoned, 0);
        }
    }

    #[test]
    fn heavy_loss_every_payload_arrives_exactly_once() {
        let n = 8;
        let mut sim = Simulator::new(
            wrap(Beacon::fleet(n, 3, 4), TransportConfig::default()),
            lossy(3, 0.35),
        );
        let outcome = sim.run(200);
        assert!(outcome.all_done, "retransmission must finish the run");
        assert!(sim.metrics().total_retransmits() > 0);
        let hub = sim.node(NodeId::from(0usize));
        let mut got = hub.inner().received.clone();
        got.sort_unstable();
        // Exactly once: no payload missing, none delivered twice.
        assert_eq!(got, all_payloads(&Beacon::fleet(n, 3, 4)));
    }

    #[test]
    fn duplicates_from_lost_acks_are_suppressed() {
        // Drop enough that acks get lost and data is re-sent after already being
        // received: the dupes must be counted and never reach the inner protocol.
        let n = 6;
        let mut sim = Simulator::new(
            wrap(Beacon::fleet(n, 3, 4), TransportConfig::default()),
            lossy(17, 0.45),
        );
        let outcome = sim.run(300);
        assert!(outcome.all_done);
        assert!(
            sim.metrics().total_dupes_dropped() > 0,
            "45% loss re-sends already-received data"
        );
        let hub = sim.node(NodeId::from(0usize));
        let mut got = hub.inner().received.clone();
        got.sort_unstable();
        let mut deduped = got.clone();
        deduped.dedup();
        assert_eq!(
            got, deduped,
            "inner protocol must never see a payload twice"
        );
        assert_eq!(got, all_payloads(&Beacon::fleet(n, 3, 4)));
    }

    #[test]
    fn window_queues_bursts_without_losing_them() {
        // Window 2 against a 5-message burst: everything still arrives, later.
        let n = 3;
        let cfg = TransportConfig::default().with_window(2);
        let mut sim = Simulator::new(wrap(Beacon::fleet(n, 5, 2), cfg), lossy(5, 0.0));
        let outcome = sim.run(60);
        assert!(outcome.all_done);
        let hub = sim.node(NodeId::from(0usize));
        let mut got = hub.inner().received.clone();
        got.sort_unstable();
        assert_eq!(got, all_payloads(&Beacon::fleet(n, 5, 2)));
    }

    #[test]
    fn unreachable_peer_is_abandoned_after_the_budget() {
        // Total loss: no data or ack ever arrives. The sender must give up after
        // max_retransmits instead of keeping the run alive forever.
        let cfg = TransportConfig::default().with_max_retransmits(3);
        let mut sim = Simulator::new(wrap(Beacon::fleet(2, 1, 1), cfg), lossy(1, 1.0));
        let outcome = sim.run(100);
        assert!(outcome.all_done, "abandonment must unblock is_done");
        assert!(
            outcome.rounds < 100,
            "gave up after the budget, not the limit"
        );
        let sender = sim.node(NodeId::from(1usize));
        assert_eq!(sender.stats().abandoned, 1);
        assert_eq!(sender.stats().retransmits, 3);
        assert!(!sender.has_outstanding());
        // The abandonment is also visible in the simulator's round metrics.
        assert_eq!(sim.metrics().total_give_ups(), 1);
    }

    #[test]
    fn failure_detector_costs_one_give_up_per_dead_peer() {
        // Node 1 streams to node 0 through total loss. Per-message give-up
        // burns the full retransmission budget for every payload; the per-peer
        // detector pays it once, then abandons the rest of the stream (and
        // every later send) on the spot.
        let run = |detector: bool| {
            let cfg = TransportConfig::default()
                .with_max_retransmits(2)
                .with_failure_detector(detector);
            let mut sim = Simulator::new(wrap(Beacon::fleet(2, 2, 10), cfg), lossy(4, 1.0));
            let outcome = sim.run(200);
            assert!(outcome.all_done, "abandonment must unblock is_done");
            let stats = sim.node(NodeId::from(1usize)).stats();
            (
                sim.metrics().total_give_ups(),
                sim.metrics().total_retransmits(),
                stats,
            )
        };
        let (gu_off, rt_off, s_off) = run(false);
        let (gu_on, rt_on, s_on) = run(true);
        // Baseline: one give-up (and a full budget of resends) per payload.
        assert_eq!(s_off.peers_failed, 0);
        assert_eq!(gu_off, 20, "2 payloads x 10 rounds, each given up on");
        // Detector: the dead peer costs exactly one give-up.
        assert_eq!(gu_on, 1);
        assert_eq!(s_on.peers_failed, 1);
        assert_eq!(s_on.abandoned, 20, "every payload is still accounted for");
        assert!(
            rt_on < rt_off / 2,
            "shared detection must slash the dead-peer burn ({rt_on} vs {rt_off})"
        );
    }

    #[test]
    fn abandoned_gap_does_not_wedge_the_stream() {
        // Node 1 streams to node 0, but a partition swallows the first rounds:
        // with a tiny retransmission budget the early sequences are *abandoned*,
        // leaving a permanent gap in the stream. The advertised floor must let
        // the receiver's cumulative ack advance past the gap — otherwise every
        // post-heal message more than 64 sequences beyond it becomes unackable
        // and is retransmitted to exhaustion (the run would blow its budget and
        // drown in duplicates).
        let n = 2;
        let burst = 2;
        let rounds = 90; // > 64 sequences past the abandoned gap
        let cfg = TransportConfig::default().with_max_retransmits(2);
        let config = SimConfig {
            caps: CapacityModel::Unbounded,
            seed: 21,
            local_edges: None,
            faults: FaultPlan::default().with_partition(vec![NodeId::from(0usize)], 0, 12),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(wrap(Beacon::fleet(n, burst, rounds), cfg), config);
        let outcome = sim.run(rounds + 40);
        assert!(outcome.all_done, "the stream must drain past the gap");
        let sender = sim.node(NodeId::from(1usize));
        assert!(sender.stats().abandoned > 0, "the gap must actually exist");
        // Every payload fired after the heal (margin for in-flight retries)
        // arrived, exactly once.
        let hub = sim.node(NodeId::from(0usize));
        let mut got = hub.inner().received.clone();
        got.sort_unstable();
        let mut deduped = got.clone();
        deduped.dedup();
        assert_eq!(got, deduped, "no payload may be delivered twice");
        let fired = all_payloads(&Beacon::fleet(n, burst, rounds));
        let post_heal: Vec<_> = fired
            .iter()
            .filter(|&&(_, tag)| (tag / 1_000) % 1_000 >= 20)
            .copied()
            .collect();
        assert!(post_heal.iter().all(|p| got.contains(p)));
        // Bounded recovery, not a retransmit storm: nothing is re-sent more
        // than its per-message budget, so the total is a small multiple of the
        // abandoned window, never proportional to the post-gap stream.
        assert!(
            sender.stats().retransmits
                <= (cfg.max_retransmits as u64 + 1) * (sender.stats().abandoned + 64),
            "retransmits {} indicate a wedged cumulative ack",
            sender.stats().retransmits
        );
    }

    #[test]
    fn floor_advances_the_receiver_past_closed_sequences() {
        let mut p: PeerState<u32> = PeerState::default();
        assert!(p.receive_data(2));
        assert!(p.receive_data(5));
        assert_eq!(p.cum_recv, 0);
        // The sender declares everything below 4 closed: 1 and 3 will never
        // arrive; 2 was already received. The horizon jumps to 3, then absorbs
        // the waiting 5? No — 4 is still open, so it stops at 3.
        p.advance_floor(4);
        assert_eq!(p.cum_recv, 3);
        assert!(p.receive_data(4), "the open seq itself still delivers");
        assert_eq!(p.cum_recv, 5, "and the buffered run is absorbed");
        assert!(!p.receive_data(2), "pre-floor repeats stay duplicates");
    }

    #[test]
    fn seeded_runs_are_byte_identical() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                wrap(Beacon::fleet(7, 2, 3), TransportConfig::default()),
                lossy(seed, 0.25),
            );
            sim.run(150);
            let stats: Vec<ReliableStats> = sim.nodes().iter().map(|r| r.stats()).collect();
            let received: Vec<_> = sim
                .nodes()
                .iter()
                .map(|r| r.inner().received.clone())
                .collect();
            (sim.metrics().clone(), stats, received)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn peer_state_dedup_and_ack_bookkeeping() {
        let mut p: PeerState<u32> = PeerState::default();
        assert!(p.receive_data(1));
        assert!(!p.receive_data(1), "repeat of the cum prefix is a dupe");
        assert!(p.receive_data(3), "out-of-order reception is fresh");
        assert!(!p.receive_data(3), "repeat above cum is a dupe");
        assert_eq!(p.cum_recv, 1);
        match p.ack_message() {
            TransportMsg::Ack { cum, sel } => {
                assert_eq!(cum, 1);
                assert_eq!(sel, 0b10, "seq 3 is cum+2, bit 1");
            }
            other => panic!("expected ack, got {other:?}"),
        }
        assert!(p.receive_data(2), "gap fill advances cum");
        assert_eq!(p.cum_recv, 3);
        assert!(p.above.is_empty());
    }
}
