//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p overlay-bench --bin experiments            # all, full sizes
//! cargo run --release -p overlay-bench --bin experiments -- quick   # all, small sizes
//! cargo run --release -p overlay-bench --bin experiments -- e2 e5   # selected ones
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        overlay_bench::run_all(false);
        return;
    }
    if args.iter().any(|a| a == "quick") {
        overlay_bench::run_all(true);
        return;
    }
    for arg in &args {
        match arg.as_str() {
            "e1" => drop(overlay_bench::e1_rounds_vs_n(&[64, 128, 256, 512, 1024])),
            "e2" => drop(overlay_bench::e2_conductance_growth(512, &[4, 8, 16, 32])),
            "e3" => drop(overlay_bench::e3_message_bounds(&[256, 512, 1024, 2048])),
            "e4" => drop(overlay_bench::e4_benign_invariants(128)),
            "e5" => drop(overlay_bench::e5_quality(&[64, 256, 1024])),
            "e6" => drop(overlay_bench::e6_components(&[16, 64, 256, 512])),
            "e7" => drop(overlay_bench::e7_spanning_tree(&[128, 256])),
            "e8" => drop(overlay_bench::e8_biconnectivity()),
            "e9" => drop(overlay_bench::e9_mis(&[256, 1024], &[4, 8, 16, 32])),
            "e10" => drop(overlay_bench::e10_spanner(&[256, 512])),
            "e12" => drop(overlay_bench::e12_baselines(&[256, 512, 1024, 2048])),
            "e13" => drop(overlay_bench::e13_fault_scenarios(
                16,
                Some(std::path::Path::new("reports")),
            )),
            "e14" => drop(overlay_bench::e14_transport_params(8)),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}
