//! Experiment harness: one function per experiment of EXPERIMENTS.md (E1–E14).
//!
//! Every function prints a self-describing table to stdout and returns the rows so that
//! tests and the Criterion benches can reuse them. Run all experiments with
//! `cargo run --release -p overlay-bench --bin experiments`, or a single one with
//! `cargo run --release -p overlay-bench --bin experiments -- e5`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use overlay_baselines::{flooding, run_luby_mis, run_pointer_jumping, SupernodeMerge};
use overlay_core::{benign, EvolutionEngine, ExpanderParams, OverlayBuilder};
use overlay_graph::{analysis, cuts, generators, DiGraph};
use overlay_hybrid::{
    sparsify, ComponentsConfig, DistributedBiconnectivity, HybridComponents, HybridMis,
    HybridSpanningTree,
};
use overlay_netsim::caps::log2_ceil;

/// A generic table row: a label plus named numeric columns.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (e.g. the topology and size).
    pub label: String,
    /// Column name → value.
    pub values: Vec<(&'static str, f64)>,
}

fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    print!("{:<28}", "case");
    for (name, _) in &rows[0].values {
        print!("{name:>16}");
    }
    println!();
    for row in rows {
        print!("{:<28}", row.label);
        for (_, v) in &row.values {
            if v.fract() == 0.0 && v.abs() < 1e12 {
                print!("{:>16}", *v as i64);
            } else {
                print!("{:>16.5}", v);
            }
        }
        println!();
    }
}

fn constant_degree_workloads(n: usize) -> Vec<(String, DiGraph)> {
    vec![
        (format!("line/{n}"), generators::line(n)),
        (format!("cycle/{n}"), generators::cycle(n)),
        (format!("binary-tree/{n}"), generators::binary_tree(n)),
        (
            format!("random-4-regular/{n}"),
            generators::random_regular(n, 4, 0xE1),
        ),
    ]
}

/// E1 — Theorem 1.1: rounds to a well-formed tree versus `n` (plus tree quality).
pub fn e1_rounds_vs_n(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (label, g) in constant_degree_workloads(n) {
            let params = ExpanderParams::for_n(n).with_seed(0xE1);
            let result = OverlayBuilder::new(params)
                .build(&g)
                .expect("pipeline succeeds");
            rows.push(Row {
                label,
                values: vec![
                    ("log2_n", log2_ceil(n) as f64),
                    ("rounds", result.rounds.total() as f64),
                    (
                        "rounds/log_n",
                        result.rounds.total() as f64 / log2_ceil(n) as f64,
                    ),
                    ("tree_degree", result.tree.max_degree() as f64),
                    ("tree_height", result.tree.height() as f64),
                ],
            });
        }
    }
    print_table(
        "E1: Theorem 1.1 — rounds to well-formed tree (O(log n))",
        &rows,
    );
    rows
}

/// E2 — Lemma 3.1/3.3: conductance growth per evolution for several walk lengths.
pub fn e2_conductance_growth(n: usize, walk_lens: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    // A constant-degree low-conductance companion to the line: two cycles of n/2 nodes
    // joined by a single bridge edge (conductance Θ(1/n), degree ≤ 3).
    let two_cycles = {
        let half = n / 2;
        let mut g = DiGraph::new(2 * half);
        for i in 0..half {
            g.add_edge(i.into(), ((i + 1) % half).into());
            g.add_edge((half + i).into(), (half + (i + 1) % half).into());
        }
        g.add_edge(0.into(), half.into());
        g
    };
    for &walk in walk_lens {
        for (label, g) in [
            (format!("line/{n}/l={walk}"), generators::line(n)),
            (format!("two-cycles/{n}/l={walk}"), two_cycles.clone()),
        ] {
            let params = ExpanderParams::for_n(n).with_seed(0xE2).with_walk_len(walk);
            let start = cuts::conductance_estimate(&benign::make_benign(&g, &params).unwrap(), 1);
            let mut engine = EvolutionEngine::from_initial(&g, params).unwrap();
            let stats = engine.run(params.evolutions, false);
            // Mean growth factor over the evolutions before the plateau (phi < 0.05).
            let mut factors = Vec::new();
            let mut prev = start;
            for s in &stats {
                if prev > 0.0 && prev < 0.05 {
                    factors.push(s.conductance / prev);
                }
                prev = s.conductance;
            }
            let mean_growth = if factors.is_empty() {
                1.0
            } else {
                factors
                    .iter()
                    .product::<f64>()
                    .powf(1.0 / factors.len() as f64)
            };
            let evolutions_to_plateau = stats
                .iter()
                .position(|s| s.conductance >= 0.05)
                .map(|p| p + 1)
                .unwrap_or(stats.len());
            rows.push(Row {
                label,
                values: vec![
                    ("phi_0", start),
                    ("phi_final", stats.last().unwrap().conductance),
                    ("mean_growth", mean_growth),
                    ("sqrt_l", (walk as f64).sqrt()),
                    ("evos_to_0.05", evolutions_to_plateau as f64),
                ],
            });
        }
    }
    print_table(
        "E2: Lemma 3.1 — per-evolution conductance growth (compare mean_growth with sqrt(l) shape)",
        &rows,
    );
    rows
}

/// E3 — Lemma 3.2 / Theorem 1.1: per-round and total message bounds.
pub fn e3_message_bounds(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let params = ExpanderParams::for_n(n).with_seed(0xE3);
        let g = generators::line(n);
        let result = OverlayBuilder::new(params)
            .build(&g)
            .expect("pipeline succeeds");
        let log_n = log2_ceil(n) as f64;
        rows.push(Row {
            label: format!("line/{n}"),
            values: vec![
                ("cap", params.ncc0_cap as f64),
                (
                    "max_per_round",
                    result.messages.max_per_node_per_round as f64,
                ),
                (
                    "per_round/log_n",
                    result.messages.max_per_node_per_round as f64 / log_n,
                ),
                ("total_per_node", result.messages.max_total_per_node as f64),
                (
                    "total/log2_n",
                    result.messages.max_total_per_node as f64 / (log_n * log_n),
                ),
                (
                    "dropped",
                    (result.messages.dropped_receive + result.messages.dropped_send) as f64,
                ),
            ],
        });
    }
    print_table(
        "E3: message bounds — O(log n) per round, O(log^2 n) total per node, zero drops",
        &rows,
    );
    rows
}

/// E4 — Definition 2.1 / Section 3.2: the benign invariant across evolutions.
pub fn e4_benign_invariants(n: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, g) in [
        (format!("line/{n}"), generators::line(n)),
        (format!("cycle/{n}"), generators::cycle(n)),
        (
            format!("random-4-regular/{n}"),
            generators::random_regular(n, 4, 0xE4),
        ),
    ] {
        let params = ExpanderParams::for_n(n).with_seed(0xE4).with_walk_len(12);
        let mut engine = EvolutionEngine::from_initial(&g, params).unwrap();
        let stats = engine.run(params.evolutions, true);
        let min_cut_seen = stats.iter().filter_map(|s| s.min_cut).min().unwrap_or(0);
        let final_cut = stats.last().and_then(|s| s.min_cut).unwrap_or(0);
        let regular_lazy_always = stats.iter().all(|s| s.regular_and_lazy);
        rows.push(Row {
            label,
            values: vec![
                ("lambda", params.lambda as f64),
                ("min_cut_seen", min_cut_seen as f64),
                ("final_cut", final_cut as f64),
                ("regular+lazy", f64::from(u8::from(regular_lazy_always))),
            ],
        });
    }
    print_table(
        "E4: benign invariant — regularity, laziness, and minimum cut vs Lambda",
        &rows,
    );
    rows
}

/// E5 — Section 3.3: quality of the final expander and of the well-formed tree.
pub fn e5_quality(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (label, g) in constant_degree_workloads(n) {
            let params = ExpanderParams::for_n(n).with_seed(0xE5);
            let result = OverlayBuilder::new(params)
                .build(&g)
                .expect("pipeline succeeds");
            let simple = result.expander.simplify();
            let diam = analysis::diameter(&simple).unwrap_or(usize::MAX);
            let phi = cuts::conductance_estimate(&result.expander, 0xE5);
            rows.push(Row {
                label,
                values: vec![
                    ("log2_n", log2_ceil(n) as f64),
                    ("expander_diam", diam as f64),
                    ("expander_phi", phi),
                    ("tree_degree", result.tree.max_degree() as f64),
                    ("tree_height", result.tree.height() as f64),
                ],
            });
        }
    }
    print_table(
        "E5: final graph quality — constant conductance, O(log n) diameter and tree height",
        &rows,
    );
    rows
}

/// E6 — Theorem 1.2: connected components, rounds versus component size.
pub fn e6_components(component_sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &m in component_sizes {
        // A forest of four components of size m each, of different shapes.
        let g = generators::disjoint_union(&[
            generators::star(m),
            generators::cycle(m.max(3)),
            generators::line(m),
            generators::connected_random(m, 0.1, 0xE6),
        ]);
        let result = HybridComponents::new(ComponentsConfig {
            seed: 0xE6,
            walk_len: 12,
            ..ComponentsConfig::default()
        })
        .run(&g)
        .expect("components succeed");
        let truth = analysis::connected_components(&g.to_undirected());
        rows.push(Row {
            label: format!("4 components of m={m}"),
            values: vec![
                ("log2_m", log2_ceil(m) as f64),
                ("components", result.component_count() as f64),
                (
                    "correct",
                    f64::from(u8::from(
                        result.component_count() == truth.component_count(),
                    )),
                ),
                ("rounds", result.rounds as f64),
                (
                    "rounds/log_m",
                    result.rounds as f64 / log2_ceil(m).max(1) as f64,
                ),
            ],
        });
    }
    print_table(
        "E6: Theorem 1.2 — component trees, rounds scale with log m (walk-stitching not applied)",
        &rows,
    );
    rows
}

/// E7 — Theorem 1.3: spanning trees by walk unwinding.
pub fn e7_spanning_tree(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (label, g) in [
            (format!("star/{n}"), generators::star(n)),
            (format!("grid/{n}"), generators::grid((n / 16).max(1), 16)),
            (
                format!("random/{n}"),
                generators::connected_random(n, 0.05, 0xE7),
            ),
        ] {
            let result = HybridSpanningTree {
                seed: 0xE7,
                walk_len: 12,
            }
            .run(&g)
            .expect("spanning tree succeeds");
            let valid = analysis::is_spanning_tree(&g.to_undirected(), &result.parent);
            rows.push(Row {
                label,
                values: vec![
                    ("valid", f64::from(u8::from(valid))),
                    ("rounds", result.rounds as f64),
                    (
                        "rounds/log_n",
                        result.rounds as f64 / log2_ceil(g.node_count()).max(1) as f64,
                    ),
                ],
            });
        }
    }
    print_table("E7: Theorem 1.3 — spanning trees via walk unwinding", &rows);
    rows
}

/// E8 — Theorem 1.4 (and Figure 1): biconnected components versus Tarjan.
pub fn e8_biconnectivity() -> Vec<Row> {
    let mut rows = Vec::new();
    let figure1 = {
        let mut g = DiGraph::new(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(2.into(), 3.into());
        g
    };
    let cases: Vec<(String, DiGraph)> = vec![
        ("figure-1".to_string(), figure1),
        (
            "chained-cycles/5x6".to_string(),
            generators::chained_cycles(5, 6),
        ),
        ("barbell/8+2".to_string(), generators::barbell(8, 2)),
        ("grid/6x6".to_string(), generators::grid(6, 6)),
        (
            "random/64".to_string(),
            generators::connected_random(64, 0.06, 0xE8),
        ),
    ];
    for (label, g) in cases {
        let ours = DistributedBiconnectivity { seed: 0xE8 }
            .run(&g)
            .expect("succeeds");
        let truth = overlay_graph::sequential::biconnected_components(&g.to_undirected());
        let mut a = ours.components.clone();
        let mut b = truth.components.clone();
        a.sort();
        b.sort();
        rows.push(Row {
            label,
            values: vec![
                ("blocks", ours.components.len() as f64),
                ("cut_vertices", ours.cut_vertices.len() as f64),
                ("bridges", ours.bridges.len() as f64),
                (
                    "matches_tarjan",
                    f64::from(u8::from(
                        a == b
                            && ours.cut_vertices == truth.cut_vertices
                            && ours.bridges == truth.bridges,
                    )),
                ),
                ("rounds", ours.rounds as f64),
            ],
        });
    }
    print_table(
        "E8: Theorem 1.4 — biconnected components (validated against Tarjan)",
        &rows,
    );
    rows
}

/// E9 — Theorem 1.5: MIS rounds versus degree and `n`, against the Luby baseline.
pub fn e9_mis(sizes: &[usize], degrees: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for &d in degrees {
            if d >= n {
                continue;
            }
            let g = generators::random_regular(n, d, 0xE9 + d as u64);
            let hybrid = HybridMis {
                seed: 0xE9,
                ..HybridMis::default()
            }
            .run(&g);
            let luby = run_luby_mis(&g, 0xE9, 400);
            let valid = overlay_graph::sequential::is_maximal_independent_set(
                &g.to_undirected(),
                &hybrid.mis,
            );
            rows.push(Row {
                label: format!("n={n}, d={d}"),
                values: vec![
                    ("valid", f64::from(u8::from(valid))),
                    ("hybrid_rounds", hybrid.total_rounds() as f64),
                    ("luby_rounds", luby.rounds as f64),
                    (
                        "largest_leftover",
                        hybrid.largest_undecided_component as f64,
                    ),
                    (
                        "log_d+loglog_n",
                        (log2_ceil(d).max(1) + log2_ceil(log2_ceil(n)).max(1)) as f64,
                    ),
                ],
            });
        }
    }
    print_table(
        "E9: Theorem 1.5 — MIS rounds (O(log d + log log n)) vs CONGEST Luby baseline (O(log n))",
        &rows,
    );
    rows
}

/// E10 — Section 4.2: spanner/degree-reduction quality.
pub fn e10_spanner(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (label, g) in [
            (format!("star/{n}"), generators::star(n)),
            (
                format!("dense-random/{n}"),
                generators::connected_random(n, 0.25, 0xE10),
            ),
            (format!("caveman/{n}"), generators::caveman(n / 16, 16)),
        ] {
            let before = g.to_undirected();
            let result = sparsify(&g, 0xE10, 4);
            let truth = analysis::connected_components(&before);
            let after = analysis::connected_components(&result.reduced);
            let same = truth.component_count() == after.component_count()
                && g.nodes().all(|u| {
                    g.nodes()
                        .all(|v| truth.same_component(u, v) == after.same_component(u, v))
                });
            rows.push(Row {
                label,
                values: vec![
                    ("deg_before", before.max_degree() as f64),
                    ("spanner_outdeg", result.spanner.max_out_degree() as f64),
                    ("deg_after", result.reduced.max_degree() as f64),
                    ("log2_n", log2_ceil(g.node_count()) as f64),
                    ("components_ok", f64::from(u8::from(same))),
                    ("rounds", result.rounds as f64),
                ],
            });
        }
    }
    print_table(
        "E10: spanner + delegation — degree drops to O(log n), components preserved",
        &rows,
    );
    rows
}

/// E12 — baseline comparison: supernode merging, pointer jumping, flooding versus the
/// paper's algorithm on the line.
pub fn e12_baselines(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::line(n);
        let ours = OverlayBuilder::new(ExpanderParams::for_n(n).with_seed(0xE12))
            .build(&g)
            .expect("pipeline succeeds");
        let merge = SupernodeMerge::new(0xE12).run(&g);
        // Pointer jumping with unbounded communication costs Θ(n²) messages per node in
        // its final rounds; simulating it beyond a few hundred nodes is pointless (the
        // blow-up is the datapoint), so larger sizes report -1.
        let (jump_rounds, jump_max_msgs) = if n <= 256 {
            let jumping = run_pointer_jumping(&g, 2 * log2_ceil(n), 0xE12);
            (
                jumping.rounds as f64,
                jumping.metrics.max_sent_in_any_round() as f64,
            )
        } else {
            (-1.0, -1.0)
        };
        let flood = flooding::rounds_until_all_know_minimum(&g, 0xE12, 4 * n).unwrap_or(4 * n);
        rows.push(Row {
            label: format!("line/{n}"),
            values: vec![
                ("ours_rounds", ours.rounds.total() as f64),
                ("merge_rounds", merge.total_rounds() as f64),
                ("flooding_rounds", flood as f64),
                ("jump_rounds", jump_rounds),
                ("jump_max_msgs", jump_max_msgs),
                ("ours_max_msgs", ours.messages.max_per_node_per_round as f64),
            ],
        });
    }
    // Extrapolation rows: at laptop sizes the log n vs log² n separation is hidden by
    // constants (our schedule pays ℓ+1 rounds per evolution), so for large n we report
    // our exact round schedule (the pipeline always runs exactly these rounds — see E1)
    // against an actual run of the centralized supernode-merging accounting and the
    // analytic Θ(n) flooding time.
    for exp in [14u32, 17, 20] {
        let n = 1usize << exp;
        let params = ExpanderParams::for_n(n);
        let ours_schedule =
            overlay_core::ExpanderNode::total_rounds(&params) + params.bfs_rounds + 1 + 1;
        let merge = if n <= (1 << 17) {
            SupernodeMerge::new(0xE12)
                .run(&generators::line(n))
                .total_rounds() as f64
        } else {
            // Beyond 2^17 nodes even the centralized accounting run gets slow; report
            // the fitted 1.1·log² n trend observed on the smaller sizes.
            1.1 * (exp as f64) * (exp as f64)
        };
        rows.push(Row {
            label: format!("line/{n} (schedule)"),
            values: vec![
                ("ours_rounds", ours_schedule as f64),
                ("merge_rounds", merge),
                ("flooding_rounds", (n - 1) as f64),
                ("jump_rounds", -1.0),
                ("jump_max_msgs", -1.0),
                ("ours_max_msgs", params.ncc0_cap as f64),
            ],
        });
    }
    print_table(
        "E12: baselines — supernode merging (log^2 n), flooding (n), pointer jumping (log n rounds but Omega(n) msgs)",
        &rows,
    );
    rows
}

/// E13 — fault scenarios: every registered churn/fault scenario swept over `seeds`
/// seeds (in parallel via rayon), reporting success rate, coverage and loss
/// accounting. With `report_dir` set, each sweep's deterministic JSON report is also
/// persisted as `<dir>/<scenario>.json` for cross-commit regression diffs (see
/// `overlay_scenarios::report`).
pub fn e13_fault_scenarios(seeds: usize, report_dir: Option<&std::path::Path>) -> Vec<Row> {
    let mut rows = Vec::new();
    for scenario in overlay_scenarios::registry() {
        let sweep = overlay_scenarios::Sweep::over_seeds(scenario.clone(), 0, seeds);
        let report = sweep.run();
        if let Some(dir) = report_dir {
            match overlay_scenarios::report::write_report(&report, dir) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("cannot write report for {}: {e}", report.scenario.name),
            }
        }
        rows.push(Row {
            label: report.scenario.label(),
            values: vec![
                ("seeds", report.records.len() as f64),
                ("success_rate", report.success_rate()),
                ("coverage", report.mean_coverage()),
                ("rounds", report.mean_rounds()),
                ("delivered", report.mean_delivered()),
                ("dropped_fault", report.total_dropped_fault() as f64),
            ],
        });
    }
    print_table(
        "E13: fault scenarios — success rate and coverage under churn, loss, delays and partitions",
        &rows,
    );
    rows
}

/// E14 — transport parameter sweep: `retransmit_after` × `window` crossed against
/// the loss rate, on the `lossy-ncc0` cycle/128 workload. Each cell runs the full
/// pipeline over the reliable transport with that configuration and reports the
/// success rate, round cost and retransmission/ack traffic, answering the ROADMAP
/// question of how the retry timer and the in-flight window trade rounds against
/// wire overhead as loss grows.
///
/// The per-phase round slack scales with the retry timer (`4 · retransmit_after +
/// 8`): a retry chain costs a constant number of timer periods, so slower timers
/// need proportionally more flat headroom — keeping every cell's budget equally
/// generous relative to its own timer isolates the *parameter* effect from budget
/// starvation.
pub fn e14_transport_params(seeds: usize) -> Vec<Row> {
    use overlay_scenarios::{FaultSpec, GraphFamily, Scenario, Sweep, TransportConfig};
    let mut rows = Vec::new();
    for &drop_prob in &[0.002, 0.02, 0.05] {
        for &retransmit_after in &[2usize, 4, 8] {
            for &window in &[2usize, 8, 64] {
                let scenario = Scenario::new(
                    "e14-transport",
                    "transport parameter sweep cell",
                    GraphFamily::Cycle,
                    128,
                )
                .with_faults(FaultSpec::Lossy { drop_prob })
                .reliable(
                    TransportConfig::default()
                        .with_retransmit_after(retransmit_after)
                        .with_window(window),
                    4 * retransmit_after as u32 + 8,
                );
                let report = Sweep::over_seeds(scenario, 0, seeds).run();
                rows.push(Row {
                    label: format!("loss={drop_prob} rto={retransmit_after} win={window}"),
                    values: vec![
                        ("success_rate", report.success_rate()),
                        ("rounds", report.mean_rounds()),
                        ("delivered", report.mean_delivered()),
                        ("retransmits", report.total_retransmits() as f64),
                        ("acks", report.total_acks() as f64),
                        ("dupes", report.total_dupes_dropped() as f64),
                    ],
                });
            }
        }
    }
    print_table(
        "E14: transport parameters — retransmit timer x window vs loss rate (cycle/128)",
        &rows,
    );
    rows
}

/// Runs every experiment with the default (paper-shaped, laptop-sized) parameters.
pub fn run_all(quick: bool) {
    let sizes: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let big: &[usize] = if quick {
        &[128, 256]
    } else {
        &[256, 512, 1024]
    };
    e1_rounds_vs_n(sizes);
    e2_conductance_growth(if quick { 256 } else { 512 }, &[4, 8, 16, 32]);
    e3_message_bounds(big);
    e4_benign_invariants(if quick { 96 } else { 128 });
    e5_quality(if quick { sizes } else { &[64, 256, 1024] });
    e6_components(if quick {
        &[16, 64, 128]
    } else {
        &[16, 64, 256, 512]
    });
    e7_spanning_tree(if quick { &[64, 128] } else { &[128, 256] });
    e8_biconnectivity();
    e9_mis(
        if quick { &[128, 256] } else { &[256, 1024] },
        &[4, 8, 16, 32],
    );
    e10_spanner(if quick { &[128] } else { &[256, 512] });
    e12_baselines(big);
    // Only the full run persists reports: its 16-seed sweeps (seeds 0..16) are
    // exactly the committed `reports/` baselines, while a quick 4-seed run would
    // clobber them with truncated bodies.
    e13_fault_scenarios(
        if quick { 4 } else { 16 },
        if quick {
            None
        } else {
            Some(std::path::Path::new("reports"))
        },
    );
    e14_transport_params(if quick { 2 } else { 8 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_have_consistent_columns() {
        let rows = e1_rounds_vs_n(&[32]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.values.len(), 5);
            assert!(r
                .values
                .iter()
                .any(|(k, v)| *k == "tree_degree" && *v <= 4.0));
        }
    }

    #[test]
    fn e8_always_matches_tarjan() {
        let rows = e8_biconnectivity();
        for r in &rows {
            let ok = r
                .values
                .iter()
                .find(|(k, _)| *k == "matches_tarjan")
                .map(|(_, v)| *v)
                .unwrap();
            assert_eq!(ok, 1.0, "{} diverged from Tarjan", r.label);
        }
    }

    #[test]
    fn e13_runs_all_scenarios_deterministically() {
        let rows = e13_fault_scenarios(3, None);
        assert!(
            rows.len() >= 6,
            "registry shrank to {} scenarios",
            rows.len()
        );
        for r in &rows {
            if r.label.starts_with("clean-") {
                assert!(
                    r.values
                        .iter()
                        .any(|(k, v)| *k == "success_rate" && *v == 1.0),
                    "{} must always succeed",
                    r.label
                );
            }
        }
        let again = e13_fault_scenarios(3, None);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.values, b.values, "{} not deterministic", a.label);
        }
    }

    #[test]
    fn e14_covers_the_grid_deterministically() {
        let rows = e14_transport_params(1);
        // 3 loss rates x 3 timers x 3 windows.
        assert_eq!(rows.len(), 27);
        for r in &rows {
            let get = |key: &str| {
                r.values
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(
                (get("success_rate") - 1.0).abs() < 1e-12,
                "{} failed unexpectedly",
                r.label
            );
            assert!(get("acks") > 0.0, "{} reported no acks", r.label);
            assert!(
                get("retransmits") > 0.0,
                "{} reported no retransmissions under loss",
                r.label
            );
        }
        let again = e14_transport_params(1);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.values, b.values, "{} not deterministic", a.label);
        }
    }

    #[test]
    fn e12_shows_the_expected_winners() {
        let rows = e12_baselines(&[256]);
        let get = |row: &Row, key: &str| {
            row.values
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        for r in &rows {
            // Flooding pays Θ(n) rounds, far more than the overlay construction.
            assert!(get(r, "flooding_rounds") > get(r, "ours_rounds"));
            // Pointer jumping needs Ω(n) messages somewhere, far above our cap-bounded
            // usage. Extrapolation rows report the -1 sentinel instead of a simulated
            // value (see e12_baselines) and are skipped.
            if get(r, "jump_max_msgs") >= 0.0 {
                assert!(get(r, "jump_max_msgs") > 4.0 * get(r, "ours_max_msgs"));
            }
        }
    }
}
