//! Criterion benches for the reliable-transport layer: what does wrapping the
//! construction pipeline in `Reliable<P>` cost on a *clean* path (pure overhead:
//! sequencing, ack bookkeeping and the per-phase ack drain, with zero
//! retransmissions), and what does a lossy run pay for actually using it?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlay_core::{ExpanderParams, OverlayBuilder, RoundBudget, TransportConfig};
use overlay_graph::generators;
use overlay_netsim::FaultPlan;

fn bench_clean_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_clean_overhead");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::new("bare", n), &g, |b, g| {
            b.iter(|| {
                let params = ExpanderParams::for_n(g.node_count()).with_seed(1);
                OverlayBuilder::new(params)
                    .build_under_faults(g, &FaultPlan::default())
                    .expect("pipeline succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("reliable", n), &g, |b, g| {
            b.iter(|| {
                let params = ExpanderParams::for_n(g.node_count()).with_seed(1);
                OverlayBuilder::new(params)
                    .with_reliable_transport(TransportConfig::default())
                    .build_under_faults(g, &FaultPlan::default())
                    .expect("pipeline succeeds")
            });
        });
    }
    group.finish();
}

fn bench_lossy_rescue(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_lossy_rescue");
    group.sample_size(10);
    let n = 128;
    let g = generators::cycle(n);
    let plan = FaultPlan::default().with_drop_prob(0.05);
    group.bench_with_input(BenchmarkId::new("reliable-5pct-loss", n), &g, |b, g| {
        b.iter(|| {
            let params = ExpanderParams::for_n(g.node_count()).with_seed(1);
            OverlayBuilder::new(params)
                .with_reliable_transport(TransportConfig::default())
                .with_round_budget(RoundBudget::STANDARD.with_slack(12))
                .build_under_faults(g, &plan)
                .expect("pipeline succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_clean_overhead, bench_lossy_rescue);
criterion_main!(benches);
