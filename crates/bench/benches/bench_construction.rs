//! Criterion benches for the Theorem 1.1 pipeline (experiment E1/E5 wall-clock
//! companion): wall-clock time of the full simulated construction per topology and
//! size. The model-level quantities (rounds, messages) are produced by the
//! `experiments` binary; these benches track the simulator's own cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlay_core::{ExpanderParams, OverlayBuilder};
use overlay_graph::generators;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_1_1_construction");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        for (name, g) in [
            ("line", generators::line(n)),
            ("cycle", generators::cycle(n)),
            ("random-4-regular", generators::random_regular(n, 4, 7)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &g, |b, g| {
                b.iter(|| {
                    let params = ExpanderParams::for_n(g.node_count()).with_seed(1);
                    OverlayBuilder::new(params)
                        .build(g)
                        .expect("pipeline succeeds")
                });
            });
        }
    }
    group.finish();
}

fn bench_evolution_step(c: &mut Criterion) {
    use overlay_core::EvolutionEngine;
    let mut group = c.benchmark_group("single_evolution");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("line", n), &n, |b, &n| {
            let params = ExpanderParams::for_n(n).with_seed(2);
            b.iter(|| {
                let mut engine =
                    EvolutionEngine::from_initial(&generators::line(n), params).unwrap();
                engine.evolve(false)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_evolution_step);
criterion_main!(benches);
