//! Criterion benches for the hybrid-model applications (Theorems 1.2–1.5): wall-clock
//! companions to experiments E6–E10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlay_graph::generators;
use overlay_hybrid::{sparsify, ComponentsConfig, HybridComponents, HybridMis, HybridSpanningTree};

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_1_2_components");
    group.sample_size(10);
    for &m in &[32usize, 128] {
        let g = generators::disjoint_union(&[
            generators::star(m),
            generators::cycle(m.max(3)),
            generators::line(m),
        ]);
        group.bench_with_input(BenchmarkId::new("forest", m), &g, |b, g| {
            b.iter(|| {
                HybridComponents::new(ComponentsConfig {
                    seed: 3,
                    walk_len: 12,
                    ..ComponentsConfig::default()
                })
                .run(g)
                .expect("components succeed")
            });
        });
    }
    group.finish();
}

fn bench_spanning_tree_and_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorems_1_3_and_1_5");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let g = generators::connected_random(n, 0.08, 5);
        group.bench_with_input(BenchmarkId::new("spanning_tree", n), &g, |b, g| {
            b.iter(|| {
                HybridSpanningTree {
                    seed: 5,
                    walk_len: 12,
                }
                .run(g)
                .expect("spanning tree succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("mis", n), &g, |b, g| {
            b.iter(|| HybridMis::default().run(g));
        });
    }
    group.finish();
}

fn bench_sparsify(c: &mut Criterion) {
    let mut group = c.benchmark_group("degree_reduction");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let g = generators::star(n);
        group.bench_with_input(BenchmarkId::new("star", n), &g, |b, g| {
            b.iter(|| sparsify(g, 7, 4));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_components,
    bench_spanning_tree_and_mis,
    bench_sparsify
);
criterion_main!(benches);
