//! Criterion benches for the baselines (experiment E12 wall-clock companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlay_baselines::{run_luby_mis, SupernodeMerge};
use overlay_graph::generators;

fn bench_supernode_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("supernode_merge");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::new("line", n), &n, |b, &n| {
            let g = generators::line(n);
            b.iter(|| SupernodeMerge::new(1).run(&g));
        });
    }
    group.finish();
}

fn bench_luby_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("luby_mis");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::new("random-8-regular", n), &n, |b, &n| {
            let g = generators::random_regular(n, 8, 3);
            b.iter(|| run_luby_mis(&g, 1, 400));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_supernode_merge, bench_luby_mis);
criterion_main!(benches);
