//! Seeded request-workload generators.
//!
//! A workload turns `(n, requests-per-node, horizon, seed)` into a complete
//! per-source injection schedule before the first protocol round runs. All
//! randomness is spent here, in one pass over a single seeded RNG, so the
//! schedule — and therefore the whole traffic run — is a pure function of its
//! arguments, and the router protocol itself never touches its per-node RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled request: injected by its source at `round`, addressed to
/// `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Protocol round (≥ 1) at which the source injects the request.
    pub round: u32,
    /// Destination node index.
    pub dst: u32,
}

/// The shape of a request workload — who talks to whom, and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Workload {
    /// Independent uniformly random destinations: the symmetric base case the
    /// expander's constant-congestion claim is stated for.
    Uniform,
    /// Zipf-skewed destination popularity with the given exponent: node 0 is
    /// the most popular destination, node `k` has weight `(k+1)^-exponent`.
    /// Models the skewed request mixes real services see.
    Zipf {
        /// The Zipf exponent `s > 0`; larger is more skewed.
        exponent: f64,
    },
    /// Every request targets one seed-chosen node: the adversarial all-to-one
    /// case that stresses the edges around the target.
    Hotspot,
    /// Uniform background traffic plus a burst window in which *every* node
    /// injects one request per round toward one seed-chosen celebrity node.
    FlashCrowd {
        /// First round of the burst window.
        burst_at: u32,
        /// Length of the burst window in rounds.
        burst_len: u32,
    },
}

impl Workload {
    /// Short kebab-case label, used in scenario tags and report headers.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Zipf { .. } => "zipf",
            Workload::Hotspot => "hotspot",
            Workload::FlashCrowd { .. } => "flash-crowd",
        }
    }

    /// Draws the complete injection schedule: one request list per source
    /// node, each sorted by round (ties by destination, then draw order).
    ///
    /// Sources are visited in node order and all draws come from one
    /// `StdRng::seed_from_u64(seed)` stream, so the schedule is a pure
    /// function of `(self, n, requests_per_node, horizon, seed)`. Injection
    /// rounds land in `1..=horizon`. A destination that would equal its
    /// source is remapped to the next node (`(dst + 1) % n`) — the overlay
    /// carries traffic, not loopbacks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `horizon == 0`.
    pub fn schedule(
        &self,
        n: usize,
        requests_per_node: u32,
        horizon: u32,
        seed: u64,
    ) -> Vec<Vec<Request>> {
        assert!(n > 0, "workloads need at least one node");
        assert!(horizon > 0, "injection horizon must be at least one round");
        let mut rng = StdRng::seed_from_u64(seed);
        // Seed-chosen focal node for the single-destination workloads.
        let focus = (rng.gen_range(0..n as u64)) as u32;
        let zipf_cdf = match self {
            Workload::Zipf { exponent } => Some(zipf_cdf(n, *exponent)),
            _ => None,
        };
        let mut out = Vec::with_capacity(n);
        for src in 0..n as u32 {
            let mut reqs: Vec<Request> = Vec::new();
            for _ in 0..requests_per_node {
                let round = rng.gen_range(1..horizon + 1);
                let dst = match self {
                    Workload::Uniform | Workload::FlashCrowd { .. } => {
                        rng.gen_range(0..n as u64) as u32
                    }
                    Workload::Zipf { .. } => {
                        let u: f64 = rng.gen();
                        sample_cdf(zipf_cdf.as_deref().expect("cdf built"), u)
                    }
                    Workload::Hotspot => focus,
                };
                reqs.push(Request {
                    round,
                    dst: remap_self(src, dst, n),
                });
            }
            if let Workload::FlashCrowd {
                burst_at,
                burst_len,
            } = *self
            {
                for round in burst_at..burst_at.saturating_add(burst_len) {
                    reqs.push(Request {
                        round: round.max(1),
                        dst: remap_self(src, focus, n),
                    });
                }
            }
            reqs.sort_by_key(|r| (r.round, r.dst));
            out.push(reqs);
        }
        out
    }

    /// Total requests the schedule injects across all nodes — the denominator
    /// of every delivered-percentage figure.
    pub fn total_requests(&self, n: usize, requests_per_node: u32) -> u64 {
        let base = n as u64 * requests_per_node as u64;
        match self {
            Workload::FlashCrowd { burst_len, .. } => base + n as u64 * *burst_len as u64,
            _ => base,
        }
    }
}

/// Remaps a self-addressed destination to the next node.
fn remap_self(src: u32, dst: u32, n: usize) -> u32 {
    if dst == src {
        (dst + 1) % n as u32
    } else {
        dst
    }
}

/// Cumulative Zipf weights over destinations `0..n` (rank = node index + 1).
fn zipf_cdf(n: usize, exponent: f64) -> Vec<f64> {
    assert!(exponent > 0.0, "Zipf exponent must be positive");
    let mut cdf = Vec::with_capacity(n);
    let mut sum = 0.0;
    for k in 0..n {
        sum += ((k + 1) as f64).powf(-exponent);
        cdf.push(sum);
    }
    let total = sum;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Inverse-CDF sampling by binary search: the first index whose cumulative
/// weight exceeds `u`.
fn sample_cdf(cdf: &[f64], u: f64) -> u32 {
    let mut lo = 0usize;
    let mut hi = cdf.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cdf[mid] < u {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_their_arguments() {
        for workload in [
            Workload::Uniform,
            Workload::Zipf { exponent: 1.1 },
            Workload::Hotspot,
            Workload::FlashCrowd {
                burst_at: 4,
                burst_len: 3,
            },
        ] {
            let a = workload.schedule(32, 4, 16, 7);
            let b = workload.schedule(32, 4, 16, 7);
            assert_eq!(a, b, "{workload:?} is not deterministic");
            let c = workload.schedule(32, 4, 16, 8);
            assert_ne!(a, c, "{workload:?} ignores its seed");
        }
    }

    #[test]
    fn schedules_respect_shape_invariants() {
        let n = 24;
        for workload in [
            Workload::Uniform,
            Workload::Zipf { exponent: 1.3 },
            Workload::Hotspot,
            Workload::FlashCrowd {
                burst_at: 3,
                burst_len: 2,
            },
        ] {
            let sched = workload.schedule(n, 3, 10, 42);
            assert_eq!(sched.len(), n);
            let mut total = 0u64;
            for (src, reqs) in sched.iter().enumerate() {
                total += reqs.len() as u64;
                for w in reqs.windows(2) {
                    assert!(w[0].round <= w[1].round, "schedule must be round-sorted");
                }
                for r in reqs {
                    assert!(r.round >= 1, "round-0 injections are not allowed");
                    assert!((r.dst as usize) < n, "destination out of range");
                    assert_ne!(r.dst as usize, src, "self-traffic must be remapped");
                }
            }
            assert_eq!(total, workload.total_requests(n, 3));
        }
    }

    #[test]
    fn hotspot_targets_one_node_and_flash_crowd_bursts() {
        let sched = Workload::Hotspot.schedule(16, 2, 8, 5);
        let mut dsts: Vec<u32> = sched.iter().flatten().map(|r| r.dst).collect();
        dsts.sort_unstable();
        dsts.dedup();
        // The focal node plus at most its remap neighbor (when the focus
        // sources to itself).
        assert!(dsts.len() <= 2, "hotspot spread over {dsts:?}");

        let flash = Workload::FlashCrowd {
            burst_at: 5,
            burst_len: 2,
        };
        let sched = flash.schedule(16, 1, 8, 5);
        for reqs in &sched {
            assert!(
                reqs.iter().filter(|r| (5..7).contains(&r.round)).count() >= 2,
                "every node fires during the burst window"
            );
        }
    }

    /// Pins the exact RNG streams of the skewed samplers: any change to the
    /// draw order, the CDF construction, or the self-remap rule shows up here
    /// before it silently invalidates every committed traffic baseline.
    #[test]
    fn zipf_and_hotspot_rng_streams_are_pinned() {
        let zipf = Workload::Zipf { exponent: 1.1 }.schedule(8, 3, 6, 1);
        assert_eq!(
            zipf[0],
            vec![
                Request { round: 4, dst: 7 },
                Request { round: 5, dst: 1 },
                Request { round: 5, dst: 1 },
            ],
            "Zipf sampler stream moved"
        );
        assert_eq!(
            zipf[7],
            vec![
                Request { round: 2, dst: 0 },
                Request { round: 4, dst: 2 },
                Request { round: 5, dst: 1 },
            ],
            "Zipf sampler stream moved"
        );
        let hot = Workload::Hotspot.schedule(8, 2, 6, 1);
        assert_eq!(
            hot[0],
            vec![Request { round: 1, dst: 6 }, Request { round: 5, dst: 6 }],
            "hotspot sampler stream moved"
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let sched = Workload::Zipf { exponent: 1.5 }.schedule(64, 16, 32, 3);
        let hits_low = sched.iter().flatten().filter(|r| r.dst < 8).count() as f64;
        let total = sched.iter().map(Vec::len).sum::<usize>() as f64;
        assert!(
            hits_low / total > 0.4,
            "low ranks drew only {:.2} of the traffic",
            hits_low / total
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_populations_are_rejected() {
        let _ = Workload::Uniform.schedule(0, 1, 1, 0);
    }
}
