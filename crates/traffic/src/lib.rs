//! Request traffic over the constructed overlay.
//!
//! The paper builds a constant-degree, `O(log n)`-diameter overlay *so that it
//! can carry traffic*: low diameter bounds per-request hop counts, constant
//! degree bounds per-node load, and expansion bounds congestion. After the
//! construction crates finish their job, this crate actually routes requests
//! over the finished edges and measures what the guarantees bought.
//!
//! Three pieces:
//!
//! * [`Workload`] — seeded request generators (uniform pairs, Zipf-skewed
//!   destinations, an all-to-one hotspot, a flash-crowd burst). A workload is
//!   *pre-scheduled*: every `(source, round, destination)` triple is drawn
//!   harness-side before the first round, so the protocol rounds themselves
//!   draw zero randomness — which is what makes a traffic run bitwise
//!   reproducible on the lockstep simulator **and** on the real-thread
//!   backends of `overlay-net` (whose clean path mirrors the simulator only
//!   while no RNG is consumed mid-round).
//! * [`Router`] — one [`overlay_netsim::Protocol`] node per overlay member.
//!   Each node holds a precomputed next-hop table ([`next_hops`]) over either
//!   the expander edges ([`RoutingPolicy::Greedy`]) or the binarized tree
//!   ([`RoutingPolicy::Tree`]), a FIFO forward queue with an NCC0-style
//!   per-round forward budget, a queue capacity, and a TTL. Congestion is
//!   enforced *at the application layer* (queue growth, overflow drops,
//!   age-outs), never by the simulator's receive cap — so a congested cell
//!   stays deterministic and backend-identical.
//! * [`TrafficReport`] / [`TrafficTally`] — delivered/dropped/expired/lost
//!   accounting plus hop-count and rounds-to-delivery percentiles
//!   (p50/p99/max) and the per-edge / per-node load maxima the paper's
//!   constant-congestion claim is about.
//!
//! The `overlay-scenarios` crate threads all of this through its registry as
//! the `traffic` scenario axis; `crates/net/tests/backend_equivalence.rs`
//! pins the simulator-vs-channel-backend delivery-set identity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod router;
mod workload;

pub use report::{percentile, TrafficReport, TrafficTally};
pub use router::{next_hops, Delivery, Router, RouterConfig, RouterMsg, RouterSummary};
pub use router::{RoutingPolicy, UNROUTABLE};
pub use workload::{Request, Workload};
