//! The router protocol: one node per overlay member, forwarding scheduled
//! requests along precomputed next-hop tables.
//!
//! Routing is table-driven and the tables are built harness-side from the
//! *finished* overlay ([`next_hops`]): greedy shortest-path next hops over the
//! expander edges, or the same construction over the binarized tree's edges
//! for the tree policy. Per round, a node absorbs arrivals, injects its
//! scheduled requests, ages out packets past their TTL, forwards up to its
//! per-round budget (FIFO), and sheds queue overflow — all without drawing
//! from its RNG, so the run is bitwise identical across the simulator and the
//! thread-backed runners.

use overlay_graph::{NodeId, UGraph};
use overlay_netsim::wire::{Wire, WireError};
use overlay_netsim::{Ctx, Envelope, Protocol};
use std::collections::{BTreeMap, VecDeque};

use crate::workload::Request;
use overlay_core::Summarize;

/// Sentinel next-hop entry: no route from this node to that destination.
pub const UNROUTABLE: u32 = u32::MAX;

/// Which edge set requests ride over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Greedy shortest-path forwarding over the expander's edges — the
    /// low-diameter, low-congestion payoff the construction promises.
    Greedy,
    /// Forwarding over the binarized tree's edges only: the fallback/compare
    /// policy (unique paths, so the root area concentrates load).
    Tree,
}

impl RoutingPolicy {
    /// Short kebab-case label, used in scenario names and report headers.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::Greedy => "greedy",
            RoutingPolicy::Tree => "tree",
        }
    }
}

/// Builds the full next-hop table of `graph`: `table[src][dst]` is the
/// neighbor `src` forwards to for `dst` ([`UNROUTABLE`] when `dst` is `src`
/// itself or unreachable).
///
/// For each destination a BFS computes hop distances, and every source picks
/// the neighbor strictly closer to the destination, ties broken by smallest
/// node id — so the table (and every path routed over it) is a pure function
/// of the graph. `O(n·(n+m))`, fine at the registry's committed sizes.
pub fn next_hops(graph: &UGraph) -> Vec<Vec<u32>> {
    let n = graph.node_count();
    let adj: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            graph
                .distinct_neighbors(NodeId::from(v))
                .into_iter()
                .map(|u| u.index() as u32)
                .collect()
        })
        .collect();
    let mut table = vec![vec![UNROUTABLE; n]; n];
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for dst in 0..n {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[dst] = 0;
        queue.clear();
        queue.push_back(dst as u32);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v as usize] {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    queue.push_back(u);
                }
            }
        }
        for src in 0..n {
            if src == dst || dist[src] == u32::MAX {
                continue;
            }
            // The strictly-closer neighbor with the smallest id; adjacency
            // lists from `distinct_neighbors` are sorted, so the first hit
            // wins.
            for &nb in &adj[src] {
                if dist[nb as usize] < dist[src] {
                    table[src][dst] = nb;
                    break;
                }
            }
        }
    }
    table
}

/// One routed message: the request id, where it is going, when it was
/// injected, and how many edges it has crossed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterMsg {
    /// Globally unique request id: `(source << 32) | per-source sequence`.
    pub id: u64,
    /// Destination node index.
    pub dst: u32,
    /// Round the source injected the request in.
    pub injected: u32,
    /// Edges crossed so far (1 on first arrival at a neighbor).
    pub hops: u32,
}

impl Wire for RouterMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.dst.encode(out);
        self.injected.encode(out);
        self.hops.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(RouterMsg {
            id: u64::decode(buf)?,
            dst: u32::decode(buf)?,
            injected: u32::decode(buf)?,
            hops: u32::decode(buf)?,
        })
    }
}

/// One completed delivery, recorded by the destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The request id.
    pub id: u64,
    /// Edges the request crossed.
    pub hops: u32,
    /// Round the source injected it in.
    pub injected: u32,
    /// Round it reached the destination in.
    pub delivered: u32,
}

impl Wire for Delivery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.hops.encode(out);
        self.injected.encode(out);
        self.delivered.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Delivery {
            id: u64::decode(buf)?,
            hops: u32::decode(buf)?,
            injected: u32::decode(buf)?,
            delivered: u32::decode(buf)?,
        })
    }
}

/// The router's tunables. All limits are per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Rounds a packet may age (round − injection round) before the holding
    /// node expires it.
    pub ttl: u32,
    /// Queue slots; packets shed from the back beyond this count as dropped.
    pub queue_cap: u32,
    /// Forwards per round — the router's own NCC0-style send discipline
    /// (keep it at or below the phase's capacity cap so the medium never
    /// truncates sends behind the router's back).
    pub per_round_budget: u32,
}

/// Per-node router state: next-hop row, injection schedule, FIFO queue, and
/// the delivery/drop ledgers the [`RouterSummary`] digests.
#[derive(Debug)]
pub struct Router {
    me: u32,
    next_hop: Vec<u32>,
    schedule: Vec<Request>,
    next_inject: usize,
    config: RouterConfig,
    queue: VecDeque<RouterMsg>,
    seq: u32,
    injected: u32,
    deliveries: Vec<Delivery>,
    dropped: Vec<u64>,
    expired: Vec<u64>,
    forwards: u64,
    edge_load: BTreeMap<u32, u32>,
    quiet: bool,
}

impl Router {
    /// A router for node `me` with its next-hop row (`next_hop[dst]`,
    /// [`UNROUTABLE`] for no route) and its injection schedule (round-sorted,
    /// as [`crate::Workload::schedule`] produces).
    pub fn new(me: u32, next_hop: Vec<u32>, schedule: Vec<Request>, config: RouterConfig) -> Self {
        Router {
            me,
            next_hop,
            schedule,
            next_inject: 0,
            config,
            queue: VecDeque::new(),
            seq: 0,
            injected: 0,
            deliveries: Vec::new(),
            dropped: Vec::new(),
            expired: Vec::new(),
            forwards: 0,
            edge_load: BTreeMap::new(),
            quiet: false,
        }
    }

    fn enqueue_or_shed(&mut self, msg: RouterMsg) {
        if (self.queue.len() as u32) < self.config.queue_cap {
            self.queue.push_back(msg);
        } else {
            self.dropped.push(msg.id);
        }
    }
}

impl Protocol for Router {
    type Message = RouterMsg;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, RouterMsg>) {
        // Injections start at round 1; the start round only exists so the
        // executors' round-0 convention lines up with the other phases.
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, RouterMsg>, inbox: &[Envelope<RouterMsg>]) {
        let round = ctx.round() as u32;
        let mut active = !inbox.is_empty();
        // Absorb arrivals (inbox order is the deterministic per-backend
        // delivery order: sender id, then send order).
        for env in inbox {
            let msg = env.payload;
            if msg.dst == self.me {
                self.deliveries.push(Delivery {
                    id: msg.id,
                    hops: msg.hops,
                    injected: msg.injected,
                    delivered: round,
                });
            } else {
                self.enqueue_or_shed(msg);
            }
        }
        // Inject this round's scheduled requests.
        while self
            .schedule
            .get(self.next_inject)
            .is_some_and(|r| r.round <= round)
        {
            let req = self.schedule[self.next_inject];
            self.next_inject += 1;
            let id = ((self.me as u64) << 32) | self.seq as u64;
            self.seq += 1;
            self.injected += 1;
            active = true;
            self.enqueue_or_shed(RouterMsg {
                id,
                dst: req.dst,
                injected: round,
                hops: 0,
            });
        }
        // Age out packets past their TTL.
        let ttl = self.config.ttl;
        let expired = &mut self.expired;
        self.queue.retain(|m| {
            if round - m.injected >= ttl {
                expired.push(m.id);
                false
            } else {
                true
            }
        });
        // Forward FIFO up to the per-round budget.
        let mut sent = 0;
        while sent < self.config.per_round_budget {
            let Some(msg) = self.queue.pop_front() else {
                break;
            };
            let hop = self.next_hop[msg.dst as usize];
            if hop == UNROUTABLE {
                self.dropped.push(msg.id);
                continue;
            }
            ctx.send_global(
                NodeId::from(hop as usize),
                RouterMsg {
                    hops: msg.hops + 1,
                    ..msg
                },
            );
            *self.edge_load.entry(hop).or_insert(0) += 1;
            self.forwards += 1;
            sent += 1;
        }
        active |= sent > 0;
        self.quiet = !active;
    }

    fn is_done(&self) -> bool {
        // Done only after a fully quiet round: schedule drained, queue empty,
        // nothing received and nothing sent. If *every* node is in this state
        // simultaneously, no message is in flight anywhere, so stopping the
        // run discards nothing.
        self.next_inject == self.schedule.len() && self.queue.is_empty() && self.quiet
    }
}

/// What the traffic phase hand-off gathers from each node: its delivery and
/// drop ledgers plus its load counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterSummary {
    /// Requests this node injected.
    pub injected: u32,
    /// Requests delivered *to* this node, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Request ids this node shed (queue overflow or no route).
    pub dropped: Vec<u64>,
    /// Request ids this node aged out past their TTL.
    pub expired: Vec<u64>,
    /// Messages this node forwarded in total (its per-node load).
    pub forwards: u64,
    /// The most-loaded incident out-edge's message count.
    pub max_edge_load: u32,
}

impl Wire for RouterSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.injected.encode(out);
        self.deliveries.encode(out);
        self.dropped.encode(out);
        self.expired.encode(out);
        self.forwards.encode(out);
        self.max_edge_load.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(RouterSummary {
            injected: u32::decode(buf)?,
            deliveries: Vec::decode(buf)?,
            dropped: Vec::decode(buf)?,
            expired: Vec::decode(buf)?,
            forwards: u64::decode(buf)?,
            max_edge_load: u32::decode(buf)?,
        })
    }
}

impl Summarize for Router {
    type Summary = RouterSummary;

    fn summarize(&self) -> RouterSummary {
        RouterSummary {
            injected: self.injected,
            deliveries: self.deliveries.clone(),
            dropped: self.dropped.clone(),
            expired: self.expired.clone(),
            forwards: self.forwards,
            max_edge_load: self.edge_load.values().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for v in 0..n - 1 {
            g.add_edge(NodeId::from(v), NodeId::from(v + 1));
        }
        g
    }

    #[test]
    fn next_hops_route_along_shortest_paths() {
        let table = next_hops(&line_graph(5));
        // From 0 toward 4, every hop steps right.
        assert_eq!(table[0][4], 1);
        assert_eq!(table[1][4], 2);
        assert_eq!(table[3][4], 4);
        // Self-routes are unroutable by construction.
        assert_eq!(table[2][2], UNROUTABLE);
    }

    #[test]
    fn next_hops_mark_disconnected_pairs() {
        let mut g = UGraph::new(4);
        g.add_edge(NodeId::from(0usize), NodeId::from(1usize));
        g.add_edge(NodeId::from(2usize), NodeId::from(3usize));
        let table = next_hops(&g);
        assert_eq!(table[0][1], 1);
        assert_eq!(table[0][2], UNROUTABLE);
        assert_eq!(table[3][1], UNROUTABLE);
    }

    #[test]
    fn wire_round_trips() {
        let msg = RouterMsg {
            id: (7u64 << 32) | 3,
            dst: 9,
            injected: 4,
            hops: 2,
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(RouterMsg::decode(&mut slice).unwrap(), msg);
        assert!(slice.is_empty());

        let summary = RouterSummary {
            injected: 2,
            deliveries: vec![Delivery {
                id: 1,
                hops: 3,
                injected: 1,
                delivered: 4,
            }],
            dropped: vec![5, 6],
            expired: vec![],
            forwards: 11,
            max_edge_load: 4,
        };
        let mut buf = Vec::new();
        summary.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(RouterSummary::decode(&mut slice).unwrap(), summary);
        assert!(slice.is_empty());
        // Truncated buffers are an error, not a panic.
        let mut short = &buf[..3];
        assert!(RouterSummary::decode(&mut short).is_err());
    }

    #[test]
    fn queue_overflow_sheds_and_ttl_expires() {
        let config = RouterConfig {
            ttl: 2,
            queue_cap: 1,
            per_round_budget: 0,
        };
        // Node 1 on a 3-line, zero forward budget: everything it receives
        // queues, overflows, then expires.
        let table = next_hops(&line_graph(3));
        let mut router = Router::new(1, table[1].clone(), Vec::new(), config);
        let mut outbox = Vec::new();
        let mut rng = overlay_netsim::node_rng(0, 1);
        let inbox: Vec<Envelope<RouterMsg>> = (0..3)
            .map(|k| Envelope {
                from: NodeId::from(0usize),
                channel: overlay_netsim::Channel::Global,
                payload: RouterMsg {
                    id: k,
                    dst: 2,
                    injected: 1,
                    hops: 1,
                },
            })
            .collect();
        let mut ctx = Ctx::external(NodeId::from(1usize), 1, 3, &mut rng, &mut outbox);
        router.on_round(&mut ctx, &inbox);
        // One queued, two shed.
        assert_eq!(router.summarize().dropped, vec![1, 2]);
        assert!(!router.is_done());
        // Two quiet rounds later the survivor ages out.
        for round in 2..4 {
            let mut ctx = Ctx::external(NodeId::from(1usize), round, 3, &mut rng, &mut outbox);
            router.on_round(&mut ctx, &[]);
        }
        assert_eq!(router.summarize().expired, vec![0]);
        assert!(router.is_done());
        assert!(outbox.is_empty());
    }
}
