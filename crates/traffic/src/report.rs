//! Traffic accounting: delivery/drop ledgers folded into the latency and
//! congestion figures the paper's guarantees are about.

use crate::router::RouterSummary;

/// Nearest-rank percentile of an **ascending-sorted** slice: `p` in `0..=100`.
/// Returns 0 for an empty slice (an empty population has no latency).
pub fn percentile(sorted: &[u32], p: u64) -> u32 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * p) / 100;
    sorted[idx as usize]
}

/// Accumulates router summaries — possibly across several phases, as the
/// traffic-during-serve path runs one traffic phase per maintenance epoch —
/// and renders one [`TrafficReport`] at the end.
#[derive(Clone, Debug, Default)]
pub struct TrafficTally {
    injected: u64,
    dropped: u64,
    expired: u64,
    hops: Vec<u32>,
    latencies: Vec<u32>,
    max_edge_load: u32,
    max_node_forwards: u64,
    rounds: usize,
}

impl TrafficTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one executed traffic phase in: `summaries` in node order,
    /// `rounds` the message rounds that phase ran.
    pub fn absorb(&mut self, summaries: &[RouterSummary], rounds: usize) {
        self.rounds += rounds;
        for s in summaries {
            self.injected += s.injected as u64;
            self.dropped += s.dropped.len() as u64;
            self.expired += s.expired.len() as u64;
            self.max_edge_load = self.max_edge_load.max(s.max_edge_load);
            self.max_node_forwards = self.max_node_forwards.max(s.forwards);
            for d in &s.deliveries {
                self.hops.push(d.hops);
                self.latencies.push(d.delivered - d.injected);
            }
        }
    }

    /// Renders the accumulated ledgers as a report.
    pub fn report(&self) -> TrafficReport {
        let mut hops = self.hops.clone();
        let mut latencies = self.latencies.clone();
        hops.sort_unstable();
        latencies.sort_unstable();
        let delivered = hops.len() as u64;
        TrafficReport {
            injected: self.injected,
            delivered,
            dropped: self.dropped,
            expired: self.expired,
            lost: self
                .injected
                .saturating_sub(delivered + self.dropped + self.expired),
            hops_p50: percentile(&hops, 50),
            hops_p99: percentile(&hops, 99),
            hops_max: hops.last().copied().unwrap_or(0),
            latency_p50: percentile(&latencies, 50),
            latency_p99: percentile(&latencies, 99),
            latency_max: latencies.last().copied().unwrap_or(0),
            max_edge_load: self.max_edge_load,
            max_node_forwards: self.max_node_forwards,
            rounds: self.rounds,
        }
    }
}

/// The deterministic outcome of a traffic run: request accounting, hop and
/// rounds-to-delivery percentiles, and the load maxima.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficReport {
    /// Requests injected across all sources.
    pub injected: u64,
    /// Requests that reached their destination.
    pub delivered: u64,
    /// Requests shed by queue overflow or lack of a route.
    pub dropped: u64,
    /// Requests aged out past their TTL while queued.
    pub expired: u64,
    /// Requests that vanished in flight (message loss under a fault plan):
    /// `injected − delivered − dropped − expired`.
    pub lost: u64,
    /// Median hop count over delivered requests.
    pub hops_p50: u32,
    /// 99th-percentile hop count — the figure the `O(log n)` diameter bounds.
    pub hops_p99: u32,
    /// Worst hop count observed.
    pub hops_max: u32,
    /// Median rounds-to-delivery (delivery round − injection round).
    pub latency_p50: u32,
    /// 99th-percentile rounds-to-delivery; queueing pushes this above the hop
    /// percentile under congestion.
    pub latency_p99: u32,
    /// Worst rounds-to-delivery observed.
    pub latency_max: u32,
    /// Most messages any single directed edge carried — the paper's
    /// constant-congestion claim measured.
    pub max_edge_load: u32,
    /// Most messages any single node forwarded (per-node load; bounded by the
    /// constant degree times the per-round budget times the rounds).
    pub max_node_forwards: u64,
    /// Message rounds the traffic phase(s) executed.
    pub rounds: usize,
}

impl TrafficReport {
    /// Builds a report from one executed phase's summaries.
    pub fn from_summaries(summaries: &[RouterSummary], rounds: usize) -> Self {
        let mut tally = TrafficTally::new();
        tally.absorb(summaries, rounds);
        tally.report()
    }

    /// Delivered fraction in `[0, 1]` (1 when nothing was injected: an empty
    /// workload loses nothing).
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Delivery;

    fn summary(deliveries: Vec<Delivery>, injected: u32) -> RouterSummary {
        RouterSummary {
            injected,
            deliveries,
            dropped: Vec::new(),
            expired: Vec::new(),
            forwards: 0,
            max_edge_load: 0,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1, 2, 3, 4, 10];
        assert_eq!(percentile(&v, 0), 1);
        assert_eq!(percentile(&v, 50), 3);
        assert_eq!(percentile(&v, 99), 4);
        assert_eq!(percentile(&v, 100), 10);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn report_accounts_for_every_request() {
        let mut tally = TrafficTally::new();
        tally.absorb(
            &[
                summary(
                    vec![Delivery {
                        id: 0,
                        hops: 2,
                        injected: 1,
                        delivered: 4,
                    }],
                    2,
                ),
                RouterSummary {
                    injected: 2,
                    deliveries: vec![Delivery {
                        id: 1,
                        hops: 5,
                        injected: 2,
                        delivered: 9,
                    }],
                    dropped: vec![7],
                    expired: vec![8],
                    forwards: 12,
                    max_edge_load: 6,
                },
            ],
            20,
        );
        let r = tally.report();
        assert_eq!(r.injected, 4);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.expired, 1);
        assert_eq!(r.lost, 0);
        assert_eq!((r.hops_p50, r.hops_max), (2, 5));
        assert_eq!((r.latency_p50, r.latency_max), (3, 7));
        assert_eq!(r.max_edge_load, 6);
        assert_eq!(r.max_node_forwards, 12);
        assert_eq!(r.rounds, 20);
        assert!((r.delivered_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_reports_zeros_and_full_delivery() {
        let r = TrafficTally::new().report();
        assert_eq!(r.injected, 0);
        assert_eq!(r.hops_p99, 0);
        assert!((r.delivered_fraction() - 1.0).abs() < 1e-12);
    }
}
