//! Property tests for netsim determinism under fault injection: identical seed +
//! config (including a `FaultPlan`) must produce byte-identical `RunMetrics`, and
//! the NCC0 receive cap must keep a deterministic seeded subset.

use overlay_networks::graph::NodeId;
use overlay_networks::netsim::{
    CapacityModel, Ctx, Envelope, FaultPlan, Protocol, RunMetrics, SimConfig, Simulator,
};
use proptest::prelude::*;

/// A deliberately chatty protocol: every node sends `fan_out` messages to a rotating
/// set of targets each round for `rounds` rounds, recording everything it receives.
#[derive(Debug)]
struct Chatter {
    me: usize,
    n: usize,
    fan_out: usize,
    rounds: usize,
    /// When set, every message targets node 0 (concentrated receive pressure, for
    /// exercising the NCC0 receive cap); otherwise targets rotate evenly.
    hot_spot: bool,
    received_from: Vec<usize>,
    done: bool,
}

impl Chatter {
    fn target(&self, k: usize, round: usize) -> NodeId {
        if self.hot_spot {
            NodeId::from(0usize)
        } else {
            NodeId::from((self.me + k + round + 1) % self.n)
        }
    }
}

impl Protocol for Chatter {
    type Message = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for k in 0..self.fan_out {
            let to = self.target(k, 0);
            ctx.send_global(to, k as u32);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Envelope<u32>]) {
        for env in inbox {
            self.received_from.push(env.from.index());
        }
        if ctx.round() < self.rounds {
            let round = ctx.round();
            for k in 0..self.fan_out {
                let to = self.target(k, round);
                ctx.send_global(to, k as u32);
            }
        } else {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

fn chatters(n: usize, fan_out: usize, rounds: usize, hot_spot: bool) -> Vec<Chatter> {
    (0..n)
        .map(|me| Chatter {
            me,
            n,
            fan_out,
            rounds,
            hot_spot,
            received_from: Vec::new(),
            done: false,
        })
        .collect()
}

/// Builds a fault plan from small generated knobs, exercising every fault kind.
fn plan_from(
    n: usize,
    drop_milli: u64,
    delay_milli: u64,
    crashes: &[usize],
    joins: &[usize],
    partition: bool,
) -> FaultPlan {
    let mut plan = FaultPlan::default().with_drop_prob(drop_milli as f64 / 1000.0);
    if delay_milli > 0 {
        plan = plan.with_delays(delay_milli as f64 / 1000.0, 3);
    }
    for (i, &c) in crashes.iter().enumerate() {
        // Skew crash rounds so several rounds are exercised; avoid node 0 so joins
        // and crashes never collide on the same node with an invalid schedule.
        plan = plan.with_crash(NodeId::from(1 + (c % (n - 1))), 2 + i % 5);
    }
    for &j in joins {
        let node = 1 + (j % (n - 1));
        if plan.crashes.iter().all(|c| c.node.index() != node) {
            plan = plan.with_join(NodeId::from(node), 1 + j % 4);
        }
    }
    if partition {
        plan = plan.with_partition((0..n / 2).map(NodeId::from).collect(), 2, 6);
    }
    plan
}

fn run_once(
    n: usize,
    seed: u64,
    plan: &FaultPlan,
    cap: usize,
    hot_spot: bool,
) -> (RunMetrics, Vec<Vec<usize>>) {
    let config = SimConfig {
        caps: CapacityModel::Ncc0 { per_round: cap },
        seed,
        local_edges: None,
        faults: plan.clone(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(chatters(n, 3, 8, hot_spot), config);
    sim.run(40);
    let metrics = sim.metrics().clone();
    let inbox_log = sim
        .nodes()
        .iter()
        .map(|c| c.received_from.clone())
        .collect();
    (metrics, inbox_log)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn identical_seed_and_fault_plan_give_byte_identical_metrics(
        n in 8usize..24,
        seed in 0u64..10_000,
        drop_milli in 0u64..400,
        delay_milli in 0u64..400,
        crashes in proptest::collection::vec(0usize..1000, 0..4),
        joins in proptest::collection::vec(0usize..1000, 0..4),
    ) {
        let plan = plan_from(n, drop_milli, delay_milli, &crashes, &joins, n >= 12);
        let (metrics_a, log_a) = run_once(n, seed, &plan, 6, false);
        let (metrics_b, log_b) = run_once(n, seed, &plan, 6, false);
        // Byte-identical: every per-round counter, every per-node total, and even the
        // order in which each node saw its messages.
        prop_assert_eq!(&metrics_a, &metrics_b);
        prop_assert_eq!(&log_a, &log_b);
        // And the fault accounting balances: nothing is both delivered and dropped.
        let sent: u64 = metrics_a.total_sent_per_node.iter().sum();
        let accounted = metrics_a.total_delivered()
            + metrics_a.total_dropped_receive()
            + metrics_a.total_dropped_fault()
            + metrics_a.total_dropped_partition()
            + metrics_a.total_dropped_offline();
        // Delayed messages still in flight when the run stops are the only gap.
        prop_assert!(accounted <= sent);
        prop_assert!(sent - accounted <= metrics_a.total_delayed());
    }

    #[test]
    fn different_seeds_change_fault_outcomes(
        n in 8usize..20,
        seed in 0u64..10_000,
    ) {
        let plan = FaultPlan::default().with_drop_prob(0.3);
        let (a, _) = run_once(n, seed, &plan, 6, false);
        let (b, _) = run_once(n, seed.wrapping_add(1), &plan, 6, false);
        // With 30% loss over hundreds of messages, two seeds virtually never agree
        // on the exact drop count; allow the rare tie on totals but require the
        // detailed metrics to differ.
        prop_assert!(a != b);
    }

    #[test]
    fn dropped_receive_equals_the_per_round_overflow(
        n in 8usize..24,
        fan_out in 1usize..4,
        cap in 2usize..40,
        seed in 0u64..10_000,
    ) {
        // Every node beams `fan_out` global messages at node 0 each round, so node
        // 0's pre-cap inbox holds exactly `n * fan_out` globals in every message
        // round and nobody else receives anything. The arena-based cap logic must
        // drop exactly the overflow: sum over inboxes of max(0, globals - cap).
        let rounds = 6usize;
        let config = SimConfig {
            caps: CapacityModel::Ncc0 { per_round: cap },
            seed,
            local_edges: None,
            faults: FaultPlan::default(),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(chatters(n, fan_out, rounds, true), config);
        sim.run(40);
        let metrics = sim.metrics();
        let arrivals = n * fan_out;
        let overflow = arrivals.saturating_sub(cap);
        prop_assert_eq!(metrics.per_round.len(), rounds + 1, "start + message rounds");
        // The start round delivers nothing and therefore drops nothing.
        prop_assert_eq!(metrics.per_round[0].dropped_receive, 0);
        prop_assert_eq!(metrics.per_round[0].delivered, 0);
        for r in 1..=rounds {
            prop_assert_eq!(
                metrics.per_round[r].dropped_receive, overflow,
                "round {} dropped != overflow", r
            );
            prop_assert_eq!(
                metrics.per_round[r].delivered, arrivals - overflow,
                "round {} delivered != min(arrivals, cap)", r
            );
        }
        prop_assert_eq!(
            metrics.total_dropped_receive(),
            (rounds * overflow) as u64
        );
    }

    #[test]
    fn ncc0_receive_cap_keeps_a_deterministic_seeded_subset(
        n in 10usize..24,
        seed in 0u64..10_000,
        cap in 2usize..5,
    ) {
        // No faults: this isolates the receive-cap drop path.
        let (metrics_a, log_a) = run_once(n, seed, &FaultPlan::default(), cap, true);
        let (_, log_b) = run_once(n, seed, &FaultPlan::default(), cap, true);
        // The kept subset is deterministic given the seed...
        prop_assert_eq!(&log_a, &log_b);
        // ...the cap is a hard bound...
        prop_assert!(metrics_a.max_received_in_any_round() <= cap);
        // ...and with every node beaming at node 0, something must have dropped.
        prop_assert!(metrics_a.total_dropped_receive() > 0);
        // A different seed keeps a different subset (w.h.p. across the run).
        let (_, log_c) = run_once(n, seed.wrapping_add(7), &FaultPlan::default(), cap, true);
        prop_assert!(log_a != log_c);
    }
}
