//! Property tests for the reliable-transport layer: seeded determinism,
//! exactly-once delivery to the wrapped protocol, and loss-free transparency
//! (the wrapped protocol's RNG stream — and the scenario-level outcome — must be
//! unchanged from the unwrapped baseline when nothing is ever lost).

use overlay_networks::core::{ExpanderNode, ExpanderParams};
use overlay_networks::graph::{generators, NodeId};
use overlay_networks::netsim::{
    CapacityModel, Ctx, Envelope, FaultPlan, Protocol, SimConfig, Simulator,
};
use overlay_networks::scenarios::{FaultSpec, GraphFamily, Scenario, TransportConfig};
use overlay_networks::transport::Reliable;
use proptest::prelude::*;

/// Every node fires `burst` uniquely-tagged messages at a rotating target each
/// round for `rounds` rounds and records everything it receives.
#[derive(Debug)]
struct Tagger {
    me: usize,
    n: usize,
    burst: usize,
    rounds: usize,
    received: Vec<(usize, u64)>,
    done: bool,
}

impl Tagger {
    fn fleet(n: usize, burst: usize, rounds: usize) -> Vec<Tagger> {
        (0..n)
            .map(|me| Tagger {
                me,
                n,
                burst,
                rounds,
                received: Vec::new(),
                done: false,
            })
            .collect()
    }

    fn fire(&self, ctx: &mut Ctx<'_, u64>, round: usize) {
        for k in 0..self.burst {
            let to = NodeId::from((self.me + k + 1) % self.n);
            let tag = (self.me as u64) << 40 | (round as u64) << 20 | k as u64;
            ctx.send_global(to, tag);
        }
    }
}

impl Protocol for Tagger {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.fire(ctx, 0);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        for env in inbox {
            self.received.push((env.from.index(), env.payload));
        }
        if ctx.round() < self.rounds {
            let round = ctx.round();
            self.fire(ctx, round);
        } else {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Every tag the fleet ever fires, sorted (the exactly-once reference multiset).
fn every_tag(n: usize, burst: usize, rounds: usize) -> Vec<u64> {
    let mut tags = Vec::new();
    for me in 0..n {
        for round in 0..rounds {
            for k in 0..burst {
                tags.push((me as u64) << 40 | (round as u64) << 20 | k as u64);
            }
        }
    }
    tags.sort_unstable();
    tags
}

fn run_reliable(
    n: usize,
    seed: u64,
    drop_milli: u64,
    delay_milli: u64,
) -> (Vec<Vec<(usize, u64)>>, overlay_networks::netsim::RunMetrics) {
    let mut faults = FaultPlan::default().with_drop_prob(drop_milli as f64 / 1000.0);
    if delay_milli > 0 {
        faults = faults.with_delays(delay_milli as f64 / 1000.0, 3);
    }
    let config = SimConfig {
        caps: CapacityModel::Unbounded,
        seed,
        local_edges: None,
        faults,
        ..SimConfig::default()
    };
    let nodes: Vec<_> = Tagger::fleet(n, 2, 4)
        .into_iter()
        .map(|t| Reliable::new(t, TransportConfig::default()))
        .collect();
    let mut sim = Simulator::new(nodes, config);
    sim.run(400);
    let received = sim
        .nodes()
        .iter()
        .map(|r| r.inner().received.clone())
        .collect();
    (received, sim.metrics().clone())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    #[test]
    fn seeded_reliable_runs_are_byte_identical_across_repeats(
        n in 4usize..12,
        seed in 0u64..10_000,
        drop_milli in 0u64..400,
        delay_milli in 0u64..300,
    ) {
        let a = run_reliable(n, seed, drop_milli, delay_milli);
        let b = run_reliable(n, seed, drop_milli, delay_milli);
        // Byte-identical: every inbox sequence of every node, and every per-round
        // counter including the new transport metrics.
        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(&a.1, &b.1);
    }

    #[test]
    fn duplicate_suppression_never_delivers_a_payload_twice(
        n in 4usize..12,
        seed in 0u64..10_000,
        drop_milli in 100u64..450,
    ) {
        // Loss forces retransmission; lost acks force *duplicate* data. The inner
        // protocol must still see every payload exactly once.
        let (received, metrics) = run_reliable(n, seed, drop_milli, 0);
        let mut seen: Vec<u64> = received.iter().flatten().map(|&(_, tag)| tag).collect();
        seen.sort_unstable();
        let mut deduped = seen.clone();
        deduped.dedup();
        prop_assert_eq!(&seen, &deduped, "a payload reached a protocol twice");
        prop_assert_eq!(seen, every_tag(n, 2, 4), "at-least-once + dedup = exactly once");
        // The network did carry duplicates whenever it dropped acks; they are
        // accounted, not hidden.
        prop_assert!(metrics.total_retransmits() > 0 || metrics.total_dropped_fault() == 0);
    }

    #[test]
    fn loss_free_wrapped_runs_preserve_the_inner_rng_stream(
        seed in 0u64..10_000,
    ) {
        // The construction protocol is RNG-heavy (token walks, accept shuffles):
        // if the adapter consumed or reordered any randomness, or perturbed any
        // inbox, the final slot lists would diverge. They must be byte-identical.
        let n = 32;
        let params = ExpanderParams {
            seed,
            ..ExpanderParams::for_n(n).with_walk_len(8).with_evolutions(4)
        };
        let g = generators::cycle(n);
        let make_nodes = || -> Vec<ExpanderNode> {
            g.nodes()
                .map(|v| ExpanderNode::new(v, g.out_neighbors(v).to_vec(), params))
                .collect()
        };
        let config = SimConfig {
            caps: CapacityModel::Ncc0 { per_round: params.ncc0_cap },
            seed,
            local_edges: None,
            faults: FaultPlan::default(),
            ..SimConfig::default()
        };
        let budget = ExpanderNode::total_rounds(&params) + 4;

        let mut bare = Simulator::new(make_nodes(), config.clone());
        prop_assert!(bare.run(budget).all_done);

        let wrapped_nodes: Vec<_> = make_nodes()
            .into_iter()
            .map(|p| Reliable::new(p, TransportConfig::default()))
            .collect();
        let mut wrapped = Simulator::new(wrapped_nodes, config);
        prop_assert!(wrapped.run(budget).all_done);
        prop_assert_eq!(wrapped.metrics().total_retransmits(), 0);
        prop_assert_eq!(wrapped.metrics().total_dupes_dropped(), 0);

        for (b, w) in bare.nodes().iter().zip(wrapped.nodes()) {
            prop_assert_eq!(b.slots(), w.inner().slots(), "node {:?} diverged", b.id());
        }
    }
}

/// Scenario-level transparency: a reliable twin of a *loss-free* scenario
/// reproduces the bare scenario's protocol-level outcome on every seed — same
/// tree, same coverage, same construction rounds modulo the final ack drain —
/// and its sweep JSON differs from the baseline's only in the declared transport
/// fields and the ack accounting.
#[test]
fn loss_rate_zero_twin_matches_the_unwrapped_sweep() {
    let bare = Scenario::new(
        "bare-clean",
        "clean cycle, bare sends",
        GraphFamily::Cycle,
        48,
    )
    .with_faults(FaultSpec::Lossy { drop_prob: 0.0 });
    let twin = bare
        .reliable(TransportConfig::default(), 12)
        .renamed("reliable-clean")
        .describe("clean cycle, reliable transport");
    for seed in 0..6u64 {
        let b = bare.run(seed);
        let t = twin.run(seed);
        // Identical protocol-level outcome (the inner RNG streams never diverged).
        assert!(b.success && t.success, "seed {seed}");
        assert_eq!(b.coverage, t.coverage, "seed {seed}");
        assert_eq!(b.core_size, t.core_size, "seed {seed}");
        assert_eq!(b.tree_height, t.tree_height, "seed {seed}");
        assert_eq!(b.tree_degree, t.tree_degree, "seed {seed}");
        // The transport's only trace is ack traffic and the per-phase ack drain.
        assert_eq!(t.retransmits, 0, "seed {seed}");
        assert_eq!(t.dupes_dropped, 0, "seed {seed}");
        assert!(t.acks > 0, "seed {seed}");
        assert_eq!(b.retransmits, 0);
        assert_eq!(b.acks, 0);
        assert!(
            t.rounds <= b.rounds + 3,
            "seed {seed}: drain cost {} -> {}",
            b.rounds,
            t.rounds
        );
    }
}
