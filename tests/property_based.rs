//! Property-based tests (proptest) over randomly generated graphs: the key invariants
//! of every pipeline must hold for arbitrary inputs, not just the hand-picked
//! topologies of the unit tests.

use overlay_networks::core::{ExpanderParams, OverlayBuilder};
use overlay_networks::graph::{analysis, generators, sequential, DiGraph, NodeId};
use overlay_networks::hybrid::{ComponentsConfig, HybridComponents, HybridMis, HybridSpanningTree};
use proptest::prelude::*;

/// A random weakly connected constant-degree graph: a Hamiltonian path over a random
/// permutation plus a few random extra edges (kept sparse so the degree stays small).
fn connected_sparse_graph(n: usize, extra: &[(usize, usize)]) -> DiGraph {
    let mut g = generators::line(n);
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            let u = g.to_undirected();
            // Keep the degree at most 4 so the NCC0 pipeline accepts the graph.
            if u.degree(NodeId::from(a)) < 4 && u.degree(NodeId::from(b)) < 4 {
                g.add_edge(NodeId::from(a), NodeId::from(b));
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    #[test]
    fn overlay_builder_always_yields_valid_well_formed_trees(
        n in 24usize..96,
        extra in proptest::collection::vec((0usize..1000, 0usize..1000), 0..12),
        seed in 0u64..1000,
    ) {
        let g = connected_sparse_graph(n, &extra);
        let params = ExpanderParams::for_n(n).with_seed(seed);
        let result = OverlayBuilder::new(params).build(&g).expect("pipeline succeeds");
        let tree = result.tree;
        prop_assert!(tree.is_valid());
        prop_assert_eq!(tree.node_count(), n);
        prop_assert!(tree.max_degree() <= 4);
        // The expander stays connected and regular.
        let expander = result.expander;
        prop_assert!(expander.is_regular(params.delta));
        prop_assert!(analysis::is_connected(&expander.simplify()));
        // No message was ever dropped.
        prop_assert_eq!(result.messages.dropped_receive, 0);
        prop_assert_eq!(result.messages.dropped_send, 0);
    }

    #[test]
    fn components_match_union_find_on_random_forests(
        sizes in proptest::collection::vec(2usize..40, 1..5),
        seed in 0u64..1000,
    ) {
        let parts: Vec<DiGraph> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| generators::connected_random(s, 0.1, seed + i as u64))
            .collect();
        let g = generators::disjoint_union(&parts);
        let result = HybridComponents::new(ComponentsConfig { seed, walk_len: 12, ..ComponentsConfig::default() })
            .run(&g)
            .expect("components succeed");
        let truth = analysis::connected_components(&g.to_undirected());
        prop_assert_eq!(result.component_count(), truth.component_count());
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(result.same_component(u, v), truth.same_component(u, v));
            }
        }
    }

    #[test]
    fn spanning_tree_is_always_a_spanning_tree(
        n in 16usize..80,
        p in 0.03f64..0.2,
        seed in 0u64..1000,
    ) {
        let g = generators::connected_random(n, p, seed);
        let result = HybridSpanningTree { seed, walk_len: 12 }.run(&g).expect("succeeds");
        prop_assert!(analysis::is_spanning_tree(&g.to_undirected(), &result.parent));
    }

    #[test]
    fn mis_is_always_maximal_and_independent(
        n in 16usize..120,
        p in 0.02f64..0.15,
        seed in 0u64..1000,
    ) {
        let g = generators::connected_random(n, p, seed);
        let result = HybridMis { seed, ..HybridMis::default() }.run(&g);
        prop_assert!(sequential::is_maximal_independent_set(&g.to_undirected(), &result.mis));
    }

    #[test]
    fn simulator_never_exceeds_capacity(
        n in 16usize..64,
        seed in 0u64..1000,
    ) {
        // Whatever the topology, the NCC0 caps are hard limits on delivered traffic.
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(seed);
        let result = OverlayBuilder::new(params).build(&g).expect("pipeline succeeds");
        prop_assert!(result.messages.max_per_node_per_round <= params.ncc0_cap);
    }
}
