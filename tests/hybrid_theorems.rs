//! Cross-crate integration tests for the hybrid-model applications (Theorems 1.2–1.5),
//! each verified against the sequential reference algorithms.

use overlay_networks::graph::{analysis, generators, sequential, DiGraph};
use overlay_networks::hybrid::{
    ComponentsConfig, DistributedBiconnectivity, HybridComponents, HybridMis, HybridSpanningTree,
};

#[test]
fn theorem_1_2_components_on_a_mixed_forest() {
    let g = generators::disjoint_union(&[
        generators::star(150),
        generators::grid(10, 10),
        generators::cycle(30),
        generators::line(1),
        generators::caveman(3, 6),
    ]);
    let result = HybridComponents::new(ComponentsConfig {
        seed: 5,
        ..ComponentsConfig::default()
    })
    .run(&g)
    .expect("components succeed");
    let truth = analysis::connected_components(&g.to_undirected());
    assert_eq!(result.component_count(), truth.component_count());
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(result.same_component(u, v), truth.same_component(u, v));
        }
    }
    for tree in &result.trees {
        assert!(tree.is_valid());
        assert!(tree.max_degree() <= 4);
    }
}

#[test]
fn theorem_1_3_spanning_trees_match_the_graph() {
    for (seed, g) in [
        (1u64, generators::star(120)),
        (2, generators::grid(9, 9)),
        (3, generators::connected_random(100, 0.08, 17)),
        (4, generators::caveman(5, 8)),
    ] {
        let result = HybridSpanningTree { seed, walk_len: 12 }
            .run(&g)
            .expect("spanning tree succeeds");
        assert!(
            analysis::is_spanning_tree(&g.to_undirected(), &result.parent),
            "seed {seed}: spanning tree invalid"
        );
    }
}

#[test]
fn theorem_1_4_biconnectivity_matches_tarjan() {
    let graphs: Vec<DiGraph> = vec![
        generators::chained_cycles(5, 5),
        generators::barbell(6, 2),
        generators::connected_random(48, 0.07, 23),
        generators::grid(6, 5),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let ours = DistributedBiconnectivity {
            seed: 40 + i as u64,
        }
        .run(g)
        .expect("biconnectivity succeeds");
        let truth = sequential::biconnected_components(&g.to_undirected());
        assert_eq!(
            ours.cut_vertices, truth.cut_vertices,
            "graph {i}: cut vertices"
        );
        assert_eq!(ours.bridges, truth.bridges, "graph {i}: bridges");
        let mut a = ours.components.clone();
        let mut b = truth.components.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "graph {i}: components");
        assert_eq!(ours.biconnected, truth.is_biconnected(&g.to_undirected()));
    }
}

#[test]
fn theorem_1_5_mis_is_valid_and_fast() {
    for (seed, g) in [
        (1u64, generators::random_regular(200, 8, 31)),
        (2, generators::star(150)),
        (3, generators::grid(12, 12)),
        (4, generators::connected_random(180, 0.04, 37)),
    ] {
        let result = HybridMis {
            seed,
            ..HybridMis::default()
        }
        .run(&g);
        assert!(
            sequential::is_maximal_independent_set(&g.to_undirected(), &result.mis),
            "seed {seed}: MIS invalid"
        );
        // The round bound is O(log d + log log n) — generous absolute cap for these sizes.
        assert!(
            result.total_rounds() <= 120,
            "seed {seed}: {} rounds look too large",
            result.total_rounds()
        );
    }
}

#[test]
fn full_stack_on_one_network() {
    // One network pushed through every theorem in sequence.
    let g = generators::caveman(4, 10);
    let components = HybridComponents::new(ComponentsConfig::default())
        .run(&g)
        .unwrap();
    assert_eq!(components.component_count(), 1);
    let tree = HybridSpanningTree::default().run(&g).unwrap();
    assert!(analysis::is_spanning_tree(&g.to_undirected(), &tree.parent));
    let bicc = DistributedBiconnectivity::default().run(&g).unwrap();
    let truth = sequential::biconnected_components(&g.to_undirected());
    assert_eq!(bicc.cut_vertices, truth.cut_vertices);
    let mis = HybridMis::default().run(&g);
    assert!(sequential::is_maximal_independent_set(
        &g.to_undirected(),
        &mis.mis
    ));
}
