//! The pipeline-refactor contract: `OverlayBuilder::build_under_faults` — now a
//! facade over the first-class phase pipeline (`overlay_core::pipeline`) — must
//! produce **byte-identical** `RunRecord`s to the committed `reports/` baselines
//! for every registered scenario. The committed files were generated before the
//! pipeline existed, so any drift in per-phase seeding, budget application,
//! metrics absorption or stall accounting shows up here as a named per-field
//! mismatch long before the CI-level `sweep_runner --check`.

use overlay_networks::scenarios::{registry, report, Json, Sweep};
use proptest::prelude::*;
use std::path::Path;

/// Number of seeds in every committed baseline sweep.
const BASELINE_SEEDS: usize = 16;

fn field<'a>(value: &'a Json, key: &str) -> &'a Json {
    match value {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {key:?}")),
        other => panic!("expected an object with field {key:?}, got {other:?}"),
    }
}

fn committed_run(scenario_name: &str, seed: usize) -> Json {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("reports")
        .join(format!("{scenario_name}.json"));
    let report = report::load_report(&path)
        .unwrap_or_else(|e| panic!("cannot load baseline {}: {e}", path.display()));
    assert_eq!(
        field(&report, "seeds").render(),
        BASELINE_SEEDS.to_string(),
        "committed baselines hold {BASELINE_SEEDS} seeds"
    );
    match field(&report, "runs") {
        Json::Arr(runs) => runs[seed].clone(),
        other => panic!("runs must be an array, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// For a random (scenario, seed) cell of the committed baseline matrix, a fresh
    /// pipeline run renders to exactly the committed per-seed record.
    #[test]
    fn pipeline_run_records_match_committed_baselines(
        scenario_idx in 0usize..registry().len(),
        seed in 0usize..BASELINE_SEEDS,
    ) {
        let scenario = registry().scenarios()[scenario_idx].clone();
        let name = scenario.name.clone();
        let fresh = Sweep::over_seeds(scenario, seed as u64, 1).run().to_json();
        let fresh_run = match field(&fresh, "runs") {
            Json::Arr(runs) => runs[0].clone(),
            other => panic!("runs must be an array, got {other:?}"),
        };
        let committed = committed_run(&name, seed);
        prop_assert_eq!(
            fresh_run.render(),
            committed.render(),
            "scenario {} seed {} drifted from its committed baseline",
            name,
            seed
        );
    }
}

/// The fixed corner everyone cares about — the clean baseline, seed 0 — checked
/// exhaustively (not sampled) so a total failure of the contract cannot hide
/// behind proptest's sampling.
#[test]
fn clean_line_seed_zero_matches_baseline_exactly() {
    let scenario = registry()
        .find("clean-line")
        .cloned()
        .expect("clean-line is registered");
    let fresh = Sweep::over_seeds(scenario, 0, 1).run().to_json();
    let fresh_run = match field(&fresh, "runs") {
        Json::Arr(runs) => runs[0].clone(),
        other => panic!("runs must be an array, got {other:?}"),
    };
    assert_eq!(fresh_run.render(), committed_run("clean-line", 0).render());
}
