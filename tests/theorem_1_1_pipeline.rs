//! Cross-crate integration tests for the Theorem 1.1 pipeline: arbitrary weakly
//! connected constant-degree graphs become well-formed trees within the model's round
//! and message budgets.

use overlay_networks::core::{ExpanderParams, OverlayBuilder, OverlayError};
use overlay_networks::graph::{analysis, generators, DiGraph};
use overlay_networks::netsim::caps::log2_ceil;

fn build(g: &DiGraph, seed: u64) -> overlay_networks::core::OverlayResult {
    let params = ExpanderParams::for_n(g.node_count()).with_seed(seed);
    OverlayBuilder::new(params)
        .build(g)
        .expect("pipeline succeeds w.h.p.")
}

#[test]
fn well_formed_tree_on_every_constant_degree_topology() {
    let n = 192;
    let topologies: Vec<(&str, DiGraph)> = vec![
        ("line", generators::line(n)),
        ("cycle", generators::cycle(n)),
        ("binary-tree", generators::binary_tree(n)),
        ("grid", generators::grid(12, 16)),
        ("random-4-regular", generators::random_regular(n, 4, 3)),
    ];
    for (name, g) in topologies {
        let result = build(&g, 100);
        let tree = &result.tree;
        assert!(tree.is_valid(), "{name}: tree must be valid");
        assert_eq!(
            tree.node_count(),
            g.node_count(),
            "{name}: tree must span all nodes"
        );
        assert!(tree.max_degree() <= 4, "{name}: degree must be constant");
        let log_n = log2_ceil(g.node_count());
        assert!(
            tree.height() <= 6 * log_n,
            "{name}: height {} should be O(log n) (log n = {log_n})",
            tree.height()
        );
        assert_eq!(result.messages.dropped_receive, 0, "{name}: no drops");
    }
}

#[test]
fn rounds_and_messages_scale_logarithmically() {
    // Rounds are fixed by the parameter schedule (all Θ(log n)); messages per node per
    // round stay within the cap at every size.
    let mut last_rounds = 0usize;
    for exp in [6usize, 7, 8] {
        let n = 1usize << exp;
        let result = build(&generators::line(n), 55);
        let params = ExpanderParams::for_n(n);
        assert!(result.messages.max_per_node_per_round <= params.ncc0_cap);
        let log_n = exp as u64;
        assert!(
            result.messages.max_total_per_node <= 60 * log_n * log_n,
            "total messages per node {} must be O(log² n)",
            result.messages.max_total_per_node
        );
        assert!(result.rounds.total() > last_rounds, "rounds grow with n");
        last_rounds = result.rounds.total();
    }
    // Doubling n from 64 to 256 should increase rounds by roughly the additive Θ(log)
    // schedule, not multiplicatively.
    let r64 = build(&generators::line(64), 56).rounds.total();
    let r256 = build(&generators::line(256), 56).rounds.total();
    assert!(
        (r256 as f64) < 1.6 * r64 as f64,
        "rounds must grow logarithmically: {r64} -> {r256}"
    );
}

#[test]
fn expander_diameter_is_logarithmic() {
    let n = 256;
    let result = build(&generators::line(n), 77);
    let simple = result.expander.simplify();
    assert!(analysis::is_connected(&simple));
    let diam = analysis::diameter(&simple).expect("connected");
    assert!(diam <= 3 * log2_ceil(n), "diameter {diam} not O(log n)");
    // The BFS tree of the expander is a spanning tree of it.
    assert!(analysis::is_spanning_tree(&simple, &result.bfs_parents));
}

#[test]
fn unusable_inputs_are_rejected() {
    let params = ExpanderParams::for_n(32);
    assert_eq!(
        OverlayBuilder::new(params)
            .build(&DiGraph::new(0))
            .unwrap_err(),
        OverlayError::EmptyGraph
    );
    let disconnected = generators::disjoint_union(&[generators::line(16), generators::line(16)]);
    assert_eq!(
        OverlayBuilder::new(params)
            .build(&disconnected)
            .unwrap_err(),
        OverlayError::Disconnected
    );
    assert!(matches!(
        OverlayBuilder::new(ExpanderParams::for_n(64))
            .build(&generators::star(64))
            .unwrap_err(),
        OverlayError::DegreeTooLarge { .. }
    ));
}

#[test]
fn different_seeds_give_different_but_valid_overlays() {
    let g = generators::cycle(96);
    let a = build(&g, 1);
    let b = build(&g, 2);
    assert!(a.tree.is_valid() && b.tree.is_valid());
    assert_ne!(
        a.expander.edges(),
        b.expander.edges(),
        "different seeds should sample different expanders"
    );
}
