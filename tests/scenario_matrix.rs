//! The scenario-matrix contract, checked registry-wide instead of against a
//! hardcoded twin table: every derived cell mirrors its baseline along exactly
//! its declared variant axis, every pairing resolves, and every explicit tag
//! round-trips through the report JSON header.

use overlay_networks::scenarios::{
    full_registry, registry, Json, Scenario, ServeSpec, Sweep, VariantAxis,
};

fn assert_mirrors_baseline(base: &Scenario, twin: &Scenario) {
    let axis = twin
        .axis
        .unwrap_or_else(|| panic!("{} declares a baseline but no axis", twin.name));
    // Per-axis rule: the twin moves along its declared axis and nothing else.
    match axis {
        VariantAxis::Transport => {
            assert!(
                base.transport.is_none() && twin.transport.is_some(),
                "{}",
                twin.name
            );
            assert_eq!(base.n, twin.n, "{}", twin.name);
            assert_eq!(base.capacity, twin.capacity, "{}", twin.name);
            assert_eq!(
                base.round_budget.as_percent(),
                twin.round_budget.as_percent(),
                "{}: a transport twin may add flat slack, never a multiplier",
                twin.name
            );
        }
        VariantAxis::Size => {
            assert_ne!(base.n, twin.n, "{}", twin.name);
            assert_eq!(base.capacity, twin.capacity, "{}", twin.name);
            assert_eq!(base.transport, twin.transport, "{}", twin.name);
            assert_eq!(base.round_budget, twin.round_budget, "{}", twin.name);
        }
        VariantAxis::Capacity => {
            assert_ne!(base.capacity, twin.capacity, "{}", twin.name);
            assert_eq!(base.n, twin.n, "{}", twin.name);
            assert_eq!(base.transport, twin.transport, "{}", twin.name);
            assert_eq!(base.round_budget, twin.round_budget, "{}", twin.name);
        }
        VariantAxis::Maintenance => {
            let b = base.serve.unwrap_or_else(|| {
                panic!("{}: maintenance baseline without serve spec", base.name)
            });
            let t = twin
                .serve
                .unwrap_or_else(|| panic!("{}: maintenance twin without serve spec", twin.name));
            assert!(
                !b.reinvite && t.reinvite,
                "{}: a maintenance twin switches re-invitation off→on",
                twin.name
            );
            assert_eq!(
                ServeSpec {
                    reinvite: false,
                    ..t
                },
                b,
                "{}: serve specs differ beyond re-invitation",
                twin.name
            );
            assert_eq!(base.n, twin.n, "{}", twin.name);
            assert_eq!(base.capacity, twin.capacity, "{}", twin.name);
            assert_eq!(base.transport, twin.transport, "{}", twin.name);
            assert_eq!(base.round_budget, twin.round_budget, "{}", twin.name);
        }
        VariantAxis::Traffic => {
            assert!(
                base.traffic.is_some() && twin.traffic.is_some(),
                "{}: a traffic twin varies one traffic spec against another",
                twin.name
            );
            assert_ne!(base.traffic, twin.traffic, "{}", twin.name);
            assert_eq!(base.n, twin.n, "{}", twin.name);
            assert_eq!(base.capacity, twin.capacity, "{}", twin.name);
            assert_eq!(base.transport, twin.transport, "{}", twin.name);
            assert_eq!(base.round_budget, twin.round_budget, "{}", twin.name);
            assert_eq!(base.serve, twin.serve, "{}", twin.name);
        }
        VariantAxis::Phases => {
            assert!(!twin.phases.is_empty(), "{}", twin.name);
            assert_ne!(base.phases, twin.phases, "{}", twin.name);
            assert_eq!(base.n, twin.n, "{}", twin.name);
            assert_eq!(base.capacity, twin.capacity, "{}", twin.name);
            assert_eq!(base.transport, twin.transport, "{}", twin.name);
            assert_eq!(base.round_budget, twin.round_budget, "{}", twin.name);
        }
    }
    // Axes shared by every kind: the experiment itself is the baseline's.
    assert_eq!(base.family, twin.family, "{}", twin.name);
    assert_eq!(base.faults, twin.faults, "{}", twin.name);
    if axis != VariantAxis::Traffic {
        assert_eq!(
            base.traffic, twin.traffic,
            "{}: only a traffic twin may vary the workload",
            twin.name
        );
    }
}

/// Registry-wide generalization of the old hardcoded
/// `reliable_twins_mirror_their_baselines` table: *every* scenario that declares
/// a baseline — in the committed matrix and the on-demand full set — resolves
/// and differs only along its declared axis.
#[test]
fn every_derived_cell_mirrors_its_baseline_along_its_axis() {
    let reg = registry();
    let mut derived = 0;
    for twin in reg.iter().chain(full_registry().iter()) {
        let Some(baseline) = &twin.baseline else {
            assert!(twin.axis.is_none(), "{}: axis without baseline", twin.name);
            continue;
        };
        let base = reg
            .find(baseline)
            .unwrap_or_else(|| panic!("{}: baseline {baseline:?} dangling", twin.name));
        assert_mirrors_baseline(base, twin);
        derived += 1;
    }
    assert!(
        derived >= 14,
        "expected the 6 reliable twins, 4 full cells and the new matrix cells; saw {derived}"
    );
}

/// All six historical reliable twins are still registered, still paired with
/// their historical baselines — now as data, not a test table.
#[test]
fn historical_reliable_twins_stay_paired() {
    let expected = [
        ("lossy-ncc0-reliable", "lossy-ncc0"),
        ("lossy-ncc0-heavy-reliable", "lossy-ncc0-heavy"),
        ("delay-jitter-reliable", "delay-jitter"),
        ("partition-heal-reliable", "partition-heal"),
        ("crash-ncc0-reliable", "mid-build-crash-wave"),
        ("join-churn-reliable", "join-churn"),
    ];
    let reg = registry();
    for (twin, baseline) in expected {
        let s = reg.find(twin).expect("twin registered");
        assert_eq!(s.baseline.as_deref(), Some(baseline), "{twin}");
        assert!(reg
            .pairs()
            .any(|(b, t)| b.name == baseline && t.name == twin));
    }
}

fn header_tags(report: &Json) -> Option<Vec<String>> {
    let Json::Obj(fields) = report else {
        panic!("report must be an object")
    };
    let (_, value) = fields.iter().find(|(k, _)| k == "tags")?;
    let Json::Arr(items) = value else {
        panic!("tags must be an array")
    };
    Some(
        items
            .iter()
            .map(|t| match t {
                Json::Str(s) => s.clone(),
                other => panic!("tag must be a string, got {other:?}"),
            })
            .collect(),
    )
}

/// Every explicit tag survives the render→parse round trip through the report
/// JSON header, and untagged scenarios keep their historical tag-free header
/// (which is what holds the pre-matrix committed baselines byte-identical).
#[test]
fn explicit_tags_round_trip_through_the_report_header() {
    let mut tagged = 0;
    for scenario in registry() {
        let expect_tags = scenario.tags.clone();
        let rendered = Sweep::over_seeds(scenario.clone(), 0, 1)
            .run()
            .to_json_string();
        let parsed = Json::parse(&rendered).expect("report parses");
        match header_tags(&parsed) {
            Some(tags) => {
                assert_eq!(tags, expect_tags, "{}", scenario.name);
                tagged += 1;
            }
            None => assert!(
                expect_tags.is_empty(),
                "{}: tags missing from the header",
                scenario.name
            ),
        }
    }
    assert!(tagged >= 5, "only {tagged} tagged scenarios in the matrix");
}
